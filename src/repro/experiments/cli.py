"""Command-line entry point for the experiment harness.

Installed as ``chronos-experiments``.  Examples::

    chronos-experiments --list
    chronos-experiments figure2 --scale smoke --jobs 4
    chronos-experiments all --scale small --seed 1
    chronos-experiments multijob --arrival poisson --load 0.8 \
        --scheduler deadline_edf
    chronos-experiments sweep --spec sweep.json --jobs 4 --cache-dir .cache
    chronos-experiments sweep --spec sweep.json --executor distributed \
        --workers 3 --db queue.sqlite
    chronos-experiments workers start --db queue.sqlite --workers 4
    chronos-experiments workers status --db queue.sqlite
    chronos-experiments workers drain --db queue.sqlite
    chronos-experiments serve --db queue.sqlite --port 8176
    chronos-experiments workers start --broker http://host:8176 --workers 4
    chronos-experiments sweep --spec sweep.json --broker http://host:8176
    chronos-experiments export --db queue.sqlite --csv results.csv
    chronos-experiments serve --db queue.sqlite --token SECRET \
        --certfile cert.pem --keyfile key.pem
    chronos-experiments sweep --spec sweep.json --broker https://host:8176 \
        --token SECRET --cafile cert.pem
    chronos-experiments workers status --broker https://host:8176 --expiring
    chronos-experiments metrics --broker https://host:8176 --token SECRET
    chronos-experiments trace 1a2b3c4d5e6f --db queue.sqlite
    chronos-experiments sweep --spec sweep.json --jobs 4 --progress
    chronos-experiments export --db queue.sqlite --columns fingerprint,pocd,utility
    chronos-experiments search --spec search.json --algorithm frontier_bisect \
        --objective cost --algo-param min_pocd=0.95 --ledger trials.sqlite
    chronos-experiments search --spec search.json --algorithm successive_halving \
        --objective utility --max-trials 40 --broker https://host:8176 --token SECRET

The ``sweep`` command runs a declarative scenario sweep from a JSON file
of the form::

    {
      "base": { "workload": {"kind": "google-trace", "params": {"num_jobs": 50}},
                "strategy": "s-resume" },
      "grid": { "strategy": ["clone", "s-restart", "s-resume"],
                "seed": [0, 1] }
    }

``base`` is a :class:`repro.api.ScenarioSpec` dictionary (or a
``{"kind": "cluster", ...}`` :class:`repro.api.ClusterSpec` one); ``grid`` maps
dotted override paths to value lists (cartesian product), and an optional
``overrides`` list of mappings can be given instead of (or in addition
to) ``grid``.

The ``search`` command explores the same space *adaptively* instead of
exhaustively: its JSON file carries the same ``base`` plus ``axes``
(``grid`` is accepted as an alias), and ``--algorithm``/``--objective``
pick an ask/tell algorithm and target metric from the
:mod:`repro.adaptive` registries (``--algo-param KEY=VALUE`` configures
the algorithm; ``--ledger FILE`` persists the trial ledger so an
interrupted search resumes with zero re-executed scenarios).  Searches
run on every sweep backend — ``--jobs``, ``--executor``, ``--db``,
``--broker`` and the security flags behave exactly as for ``sweep``.

The ``workers`` command manages a fleet of distributed sweep workers
attached to a queue — a local database (``--db``) or a remote sweep
service (``--broker http://host:port``, see :mod:`repro.service`):
``start`` spawns worker processes that claim queued scenarios under
crash-safe leases (and, with ``--restarts``, replaces crashed members
automatically), ``status`` prints queue/lease/worker state, and
``drain`` asks running workers to exit once no claimable work remains.

``serve`` runs the HTTP broker front-end that makes multi-host fleets
possible, and ``export`` dumps a queue database's result store as CSV
(``--columns`` selects straight from the columnar summaries table).

Sweeps are event driven end to end: ``sweep`` and every harness render a
live progress line (done/total, cache hits, failures, ETA) when stderr
is a terminal — force it with ``--progress`` (CI logs) or silence it
with ``--quiet``.  Ctrl-C mid-``sweep`` prints the *partial* result
before exiting 130; with a ``--cache-dir``, ``--db`` or ``--broker``
the completed scenarios keep their cache/store entries (and a local
queue's unclaimed tasks are released), so re-running the same command
finishes only what is left.  An interrupted harness —
whose tables need every scenario — exits 130 with a one-line notice
instead of a traceback, and its finished scenarios likewise survive in
whatever cache or store the run used.

Security flows through the environment: ``--token``/``--cafile`` (or the
``CHRONOS_TOKEN``/``CHRONOS_CAFILE`` variables they export) authenticate
every client command — ``sweep``, ``workers``, the harnesses — against a
service started with ``serve --token … --certfile … --keyfile …``, and
spawned worker processes inherit the credentials automatically.
Rejected credentials are an exit-2 diagnostic, never a retry loop.
"""

from __future__ import annotations

import argparse
import io
import json
import os
import sys
import time
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.api import (
    EXECUTORS,
    ResultCache,
    ScenarioCacheHit,
    ScenarioCompleted,
    ScenarioFailed,
    ScenarioQueued,
    ScenarioRetried,
    SearchFinished,
    SpecValidationError,
    Sweep,
    SweepEvent,
    SweepFinished,
    SweepResult,
    SweepStarted,
    TrialProposed,
    TrialPruned,
    UnknownPluginError,
    set_default_executor,
    set_default_on_event,
    spec_from_dict,
)
from repro.experiments.common import ExperimentScale, ExperimentTable
from repro.experiments.figure2 import run_figure2
from repro.experiments.figure3 import run_figure3
from repro.experiments.figure4 import run_figure4
from repro.experiments.figure5 import run_figure5
from repro.experiments.multijob import run_multijob
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2


class UnknownExperimentError(KeyError):
    """Unknown experiment name(s); the message lists what is available."""

    def __init__(self, unknown: Sequence[str], available: Iterable[str]):
        self.unknown = tuple(unknown)
        self.available = tuple(available)
        self.message = (
            f"unknown experiments: {', '.join(self.unknown)} "
            f"(available: {', '.join(self.available)}, all)"
        )
        super().__init__(self.message)

    def __str__(self) -> str:
        # KeyError.__str__ would repr() the message, adding stray quotes.
        return self.message


def _tables_of(result) -> List[ExperimentTable]:
    """Normalise an experiment result to a flat list of tables."""
    if isinstance(result, ExperimentTable):
        return [result]
    if isinstance(result, dict):
        return list(result.values())
    raise TypeError(f"unexpected experiment result type: {type(result)!r}")


#: Registry of runnable experiments.
EXPERIMENTS: Dict[str, Callable[..., object]] = {
    "figure2": run_figure2,
    "table1": run_table1,
    "table2": run_table2,
    "figure3": run_figure3,
    "figure4": run_figure4,
    "figure5": run_figure5,
}


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for ``chronos-experiments``."""
    parser = argparse.ArgumentParser(
        prog="chronos-experiments",
        description="Reproduce the tables and figures of the Chronos paper.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=["all"],
        help=(
            "experiment names (figure2, table1, table2, figure3, figure4, figure5), "
            "'all', 'multijob' to run the multi-job cluster experiment "
            "(--arrival/--load/--scheduler), "
            "'sweep' to run a scenario sweep from --spec, "
            "'search' to run an adaptive ask/tell search from --spec, "
            "'workers start|status|drain' to manage distributed sweep workers, "
            "'serve' to run the HTTP broker front-end, "
            "'metrics' to scrape a sweep service's telemetry registry, "
            "'trace FINGERPRINT' to reconstruct one scenario's event trail "
            "from a queue (--db) or service (--broker), or "
            "'export' to dump a queue's result store as CSV"
        ),
    )
    parser.add_argument(
        "--scale",
        choices=[scale.value for scale in ExperimentScale],
        default=ExperimentScale.SMALL.value,
        help="experiment scale (smoke: seconds, small: default, full: paper scale)",
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for independent simulations (default: 1, inline)",
    )
    parser.add_argument(
        "--spec",
        help="sweep/search specification JSON file (used by 'sweep' and 'search')",
    )
    parser.add_argument(
        "--arrival",
        choices=["batch", "poisson", "trace"],
        default="poisson",
        help="job arrival model for the 'multijob' experiment (default: poisson)",
    )
    parser.add_argument(
        "--load",
        type=float,
        default=0.8,
        help=(
            "offered load of the 'multijob' scheduler comparison, normalized so "
            "1.0 saturates the shared slot pool (default: 0.8)"
        ),
    )
    parser.add_argument(
        "--scheduler",
        action="append",
        metavar="NAME",
        help=(
            "cluster scheduling policy for 'multijob', repeatable or comma-"
            "separated — fifo, fair, deadline_edf, spec_budget (default: "
            "fifo,deadline_edf,spec_budget; the first drives the load curve)"
        ),
    )
    parser.add_argument(
        "--algorithm",
        default="random",
        help=(
            "ask/tell algorithm for the 'search' command: random, grid, "
            "successive_halving, frontier_bisect, or anything registered via "
            "repro.adaptive.register_algorithm (default: random)"
        ),
    )
    parser.add_argument(
        "--objective",
        default="utility",
        help=(
            "objective the 'search' command optimizes: utility, pocd, cost, "
            "response_time, machine_time, or anything registered via "
            "repro.adaptive.register_objective (default: utility)"
        ),
    )
    parser.add_argument(
        "--max-trials",
        type=int,
        help="trial budget for 'search' (default: run until the algorithm finishes)",
    )
    parser.add_argument(
        "--trial-batch",
        type=int,
        default=8,
        metavar="N",
        help=(
            "proposals 'search' asks for and executes per round — the fan-out "
            "unit on parallel executors (default: 8)"
        ),
    )
    parser.add_argument(
        "--ledger",
        metavar="FILE",
        help=(
            "sqlite trial ledger for 'search'; persists every trial so an "
            "interrupted search resumes with zero re-executed scenarios "
            "(omit for an in-memory, non-resumable search)"
        ),
    )
    parser.add_argument(
        "--algo-param",
        action="append",
        metavar="KEY=VALUE",
        help=(
            "extra algorithm configuration for 'search', repeatable — e.g. "
            "--algo-param min_pocd=0.95 --algo-param eta=3 (values parse as "
            "JSON, falling back to strings)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        help="fingerprint-keyed result cache directory (used by the 'sweep' command)",
    )
    parser.add_argument(
        "--csv",
        nargs="?",
        const=True,
        default=False,
        metavar="FILE",
        help=(
            "emit results as CSV instead of an aligned table; with a FILE "
            "argument, write the CSV there (used by 'sweep' and 'export')"
        ),
    )
    parser.add_argument(
        "--executor",
        choices=list(EXECUTORS),
        help=(
            "sweep backend: inline, pool, or distributed (sqlite queue + worker "
            "processes); applies to 'sweep' and to the experiment harnesses"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        help="worker processes for the distributed executor / 'workers start' (default: 3)",
    )
    parser.add_argument(
        "--db",
        help=(
            "queue database path for the distributed executor and the 'workers', "
            "'serve' and 'export' commands; omitting it gives 'sweep' a throwaway "
            "per-run queue"
        ),
    )
    parser.add_argument(
        "--broker",
        metavar="URL",
        help=(
            "http(s)://host:port of a 'chronos-experiments serve' sweep service, or a "
            "'shards:a.sqlite,b.sqlite' / 'shards:topology.json' federation of several "
            "backends; an alternative to --db for 'sweep' and 'workers' that needs no "
            "shared filesystem (multi-host fleets)"
        ),
    )
    parser.add_argument(
        "--token",
        metavar="SECRET",
        help=(
            "bearer token: required of clients by 'serve', sent by 'sweep', 'workers' "
            "and the harnesses (default: the CHRONOS_TOKEN environment variable)"
        ),
    )
    parser.add_argument(
        "--certfile",
        metavar="PEM",
        help="TLS certificate for 'serve'; makes the service an https:// target",
    )
    parser.add_argument(
        "--keyfile",
        metavar="PEM",
        help="TLS private key for 'serve' (omit if the key is inside --certfile)",
    )
    parser.add_argument(
        "--cafile",
        metavar="PEM",
        help=(
            "CA bundle client commands verify an https:// --broker against — for a "
            "self-signed deployment, the server's certificate itself (default: the "
            "CHRONOS_CAFILE environment variable, then the system trust store)"
        ),
    )
    parser.add_argument(
        "--insecure",
        action="store_true",
        help="skip TLS certificate verification of an https:// --broker (testing only)",
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="interface the 'serve' command binds (default: 127.0.0.1)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=8176,
        help="port the 'serve' command listens on (default: 8176; 0 picks a free port)",
    )
    parser.add_argument(
        "--lease-timeout",
        type=float,
        default=30.0,
        help="seconds a worker's task lease survives without a heartbeat (default: 30)",
    )
    parser.add_argument(
        "--exit-when-idle",
        action="store_true",
        help="make 'workers start' exit once the queue settles instead of polling forever",
    )
    parser.add_argument(
        "--restarts",
        type=int,
        default=3,
        help=(
            "restart tokens per fleet member: crashed members are replaced under a "
            "token bucket (one token back every --restart-refill seconds) with "
            "exponential backoff on crash loops (default: 3; 0 disables restarts)"
        ),
    )
    parser.add_argument(
        "--restart-refill",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="seconds for a fleet member to regain one restart token (default: 30)",
    )
    parser.add_argument(
        "--expiring",
        action="store_true",
        help=(
            "make 'workers status' also report what a lease sweep would do right now "
            "(dry run — nothing is requeued), for debugging stuck leases remotely"
        ),
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help=(
            "render a live progress line (done/total, cache hits, failures, ETA) for "
            "'sweep' and the experiment harnesses; the default is on when stderr is a "
            "terminal, off otherwise"
        ),
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the live progress line even on a terminal",
    )
    parser.add_argument(
        "--columns",
        metavar="COL,COL,...",
        help=(
            "comma-separated summary columns for 'export' (e.g. fingerprint,pocd,utility); "
            "served from the store's columnar summaries table via SQL column select "
            "instead of parsing result JSON"
        ),
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help=(
            "make 'metrics' emit the registry's JSON snapshot (via RPC) instead "
            "of the Prometheus text exposition"
        ),
    )
    parser.add_argument(
        "--limit",
        type=int,
        default=1000,
        metavar="N",
        help="maximum event-log rows the 'trace' command fetches (default: 1000)",
    )
    parser.add_argument("--list", action="store_true", help="list available experiments and exit")
    return parser


def progress_enabled(args: argparse.Namespace) -> bool:
    """Whether to render live sweep progress: ``--progress``/``--quiet``
    force it; otherwise it follows whether stderr is a terminal."""
    if args.quiet:
        return False
    if args.progress:
        return True
    try:
        return sys.stderr.isatty()
    except (AttributeError, ValueError):
        return False


class ProgressLine:
    """Render the sweep event stream as a single live progress line.

    Consumes :mod:`repro.api.events` events (one instance handles any
    number of consecutive sweeps — each ``SweepStarted`` resets it) and
    writes ``done/total``, cache hits, failures, retries and an ETA to
    stderr.  On a terminal the line redraws in place; elsewhere (CI logs
    with ``--progress`` forced on) it emits plain, rate-limited lines.

    An adaptive search speaks the same stream plus ``TrialProposed`` /
    ``TrialPruned`` / ``SearchFinished``; the first trial event flips the
    line into search mode (``search done/proposed trials``, prune count).
    """

    def __init__(self, stream=None, min_interval: float = 0.1):
        self._stream = stream if stream is not None else sys.stderr
        try:
            self._tty = self._stream.isatty()
        except (AttributeError, ValueError):
            self._tty = False
        self._min_interval = min_interval
        self._last_render = 0.0
        self._last_width = 0
        self._reset(0)
        # Search counters live outside _reset on purpose: a search stream
        # suppresses its inner batches' SweepStarted frames, so nothing
        # may zero the trial tally mid-run.
        self._search = False
        self._trials = 0
        self._pruned = 0

    def _reset(self, total: int) -> None:
        self._total = total
        self._done = 0
        self._hits = 0
        self._failed = 0
        self._retried = 0
        self._queued: Dict[str, int] = {}

    def __call__(self, event: SweepEvent) -> None:
        if isinstance(event, SweepStarted):
            self._reset(event.total)
        elif isinstance(event, TrialProposed):
            self._search = True
            self._trials += 1
        elif isinstance(event, TrialPruned):
            self._search = True
            self._pruned += 1
        elif isinstance(event, SearchFinished):
            self._search = True
            self._trials = event.trials
            self._pruned = event.pruned
            self._render(event.elapsed_s, final=True, cancelled=event.cancelled,
                         stopped=event.stopped)
            return
        elif isinstance(event, ScenarioQueued):
            # duplicate fingerprints queue once per index but complete
            # once; counting queued indices keeps done/total honest
            self._queued[event.fingerprint] = self._queued.get(event.fingerprint, 0) + 1
        elif isinstance(event, ScenarioCompleted):
            self._done += self._queued.pop(event.fingerprint, 1)
        elif isinstance(event, ScenarioCacheHit):
            self._hits += self._queued.pop(event.fingerprint, 1)
        elif isinstance(event, ScenarioFailed):
            self._failed += 1
        elif isinstance(event, ScenarioRetried):
            self._retried += 1
        if isinstance(event, SweepFinished):
            self._render(event.elapsed_s, final=True, cancelled=event.cancelled,
                         stopped=event.stopped)
            return
        now = time.monotonic()
        if now - self._last_render >= self._min_interval:
            self._last_render = now
            self._render(float(getattr(event, "elapsed_s", 0.0)))

    def abort(self) -> None:
        """Terminate a dangling in-place line (sweep died mid-stream).

        A sweep that errors out (scenario failure under the default
        ``on_failure="raise"``, an auth rejection, ...) never emits
        ``SweepFinished``; on a tty the last redraw left the cursor on
        the progress line, and whatever is printed next — a diagnostic,
        a traceback — would be glued onto it.  No-op when the line was
        already finished.
        """
        if self._tty and self._last_width:
            try:
                self._stream.write("\n")
                self._stream.flush()
            except (OSError, ValueError):
                pass
            self._last_width = 0

    def _render(
        self, elapsed_s: float, final: bool = False, cancelled: bool = False,
        stopped: bool = False,
    ) -> None:
        finished = self._done + self._hits
        if self._search:
            parts = [f"search {finished}/{self._trials} trials"]
            if self._pruned:
                parts.append(f"{self._pruned} pruned")
        else:
            parts = [f"sweep {finished}/{self._total}"]
        if self._hits:
            parts.append(f"{self._hits} cached")
        if self._failed:
            parts.append(f"{self._failed} failed")
        if self._retried:
            parts.append(f"{self._retried} retried")
        target = self._trials if self._search else self._total
        remaining = max(0, target - finished - self._failed)
        if final:
            state = "stopped early" if stopped else ("cancelled" if cancelled else "done")
            parts.append(f"{state} in {elapsed_s:.1f}s")
        elif self._done and remaining and elapsed_s > 0:
            # rate from *executed* completions only: cache hits resolve in
            # microseconds and would make a resumed sweep's ETA absurd
            parts.append(f"eta {elapsed_s / self._done * remaining:.0f}s")
        line = "  ".join(parts)
        try:
            if self._tty:
                padding = " " * max(0, self._last_width - len(line))
                self._stream.write("\r" + line + padding + ("\n" if final else ""))
                self._last_width = 0 if final else len(line)
            else:
                self._stream.write(line + "\n")
            self._stream.flush()
        except (OSError, ValueError):
            pass  # a closed/broken stderr must never kill the sweep


def run_experiments(
    names: Iterable[str], scale: ExperimentScale, seed: int, jobs: int = 1
) -> List[ExperimentTable]:
    """Run the named experiments and return all produced tables."""
    selected = list(names)
    if not selected or "all" in selected:
        selected = list(EXPERIMENTS)
    unknown = [name for name in selected if name not in EXPERIMENTS]
    if unknown:
        raise UnknownExperimentError(unknown, EXPERIMENTS)
    tables: List[ExperimentTable] = []
    for name in selected:
        tables.extend(_tables_of(EXPERIMENTS[name](scale=scale, seed=seed, jobs=jobs)))
    return tables


def apply_security_args(args: argparse.Namespace) -> Dict[str, Optional[str]]:
    """Export ``--token``/``--cafile``/``--insecure`` into the environment.

    The credential environment (``CHRONOS_TOKEN`` and friends) is the
    one channel every layer already reads — ``open_broker``/``open_store``
    resolve it per connection, and spawned worker processes inherit it —
    so exporting the flags here secures the whole command, local fleets
    included, without threading parameters through the sweep API.

    Returns the previous values of the touched variables so ``main`` can
    restore them: in-process callers (tests, embedders) must not leak one
    command's credentials onto the next.
    """
    if not (args.token or args.cafile or args.insecure):
        return {}  # nothing to export — and sqlite-only commands stay
        # clear of the HTTP/TLS machinery entirely (lazy-import contract)
    from repro.service import CAFILE_ENV, TOKEN_ENV, VERIFY_ENV

    desired: Dict[str, str] = {}
    if args.token:
        desired[TOKEN_ENV] = args.token
    if args.cafile:
        desired[CAFILE_ENV] = args.cafile
    if args.insecure:
        desired[VERIFY_ENV] = "0"
    previous = {key: os.environ.get(key) for key in desired}
    os.environ.update(desired)
    return previous


def restore_environment(previous: Dict[str, Optional[str]]) -> None:
    """Undo :func:`apply_security_args` (None means "was unset")."""
    for key, value in previous.items():
        if value is None:
            os.environ.pop(key, None)
        else:
            os.environ[key] = value


def run_sweep_command(args: argparse.Namespace) -> int:
    """Handle ``chronos-experiments sweep --spec FILE``."""
    if not args.spec:
        print("sweep requires --spec FILE (a sweep specification JSON)", file=sys.stderr)
        return 2
    path = Path(args.spec)
    try:
        payload = json.loads(path.read_text())
    except OSError as error:
        print(f"cannot read sweep spec {path}: {error}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as error:
        print(f"invalid JSON in {path}: {error}", file=sys.stderr)
        return 2
    if not isinstance(payload, dict) or "base" not in payload:
        print(f"{path}: sweep spec must be an object with a 'base' scenario", file=sys.stderr)
        return 2
    try:
        # Polymorphic: a plain scenario, or {"kind": "cluster", ...}.
        base = spec_from_dict(payload["base"])
        overrides_payload = payload.get("overrides", [])
        if isinstance(overrides_payload, (str, bytes)) or not isinstance(overrides_payload, list):
            raise SpecValidationError("overrides", "must be a list of override mappings")
        overrides = list(overrides_payload)
        grid = payload.get("grid")
        if grid:
            overrides.extend(Sweep.grid_overrides(grid))
        sweep = Sweep(base, overrides or None)
    except SpecValidationError as error:
        print(f"{path}: {error}", file=sys.stderr)
        return 2
    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    distributed = args.executor == "distributed" or args.broker
    from repro.service import ServiceAuthError, ServiceError

    progress = ProgressLine() if progress_enabled(args) else None
    try:
        result = sweep.run(
            jobs=max(1, args.jobs),
            cache=cache,
            executor=args.executor,
            workers=args.workers,
            db=args.db,
            broker=args.broker,
            lease_timeout=args.lease_timeout if distributed else None,
            on_event=progress,
        )
    except ServiceAuthError as error:
        print(f"sweep service authentication failed: {error}", file=sys.stderr)
        return 2
    except ServiceError as error:
        print(f"sweep service error: {error}", file=sys.stderr)
        return 2
    except ValueError as error:
        # e.g. a malformed --broker URL or conflicting --db/--broker
        print(f"sweep: {error}", file=sys.stderr)
        return 2
    finally:
        if progress is not None:
            # a sweep that died mid-stream left the tty cursor on the
            # progress line; diagnostics must not be glued onto it
            progress.abort()
    _emit_result(result, args.csv)
    if result.cancelled:
        # Ctrl-C: the completed partition was printed above; say what is
        # left and exit with the conventional SIGINT status.  The resume
        # hint is only true when the finished work survives somewhere —
        # a cache dir, a durable queue db, or a broker's result store; a
        # bare pool run (or a throwaway per-run queue) keeps nothing.
        durable = bool(args.cache_dir or args.db or args.broker)
        hint = (
            "re-run the same command to complete only those"
            if durable
            else "completed work was not persisted — pass --cache-dir or --db to make "
            "cancelled sweeps resumable"
        )
        print(
            f"sweep cancelled: {len(result.pending)} scenario(s) pending ({hint})",
            file=sys.stderr,
        )
        return 130
    return 0


def parse_algo_params(items: Optional[Sequence[str]]) -> Dict[str, object]:
    """Parse repeated ``--algo-param KEY=VALUE`` flags.

    Values go through :func:`json.loads` so numbers, booleans and lists
    arrive typed (``min_pocd=0.95`` → float); anything that is not JSON
    stays a string (``resource_axis=seed``).
    """
    params: Dict[str, object] = {}
    for item in items or []:
        key, sep, raw = item.partition("=")
        key = key.strip()
        if not sep or not key:
            raise ValueError(f"--algo-param expects KEY=VALUE, got {item!r}")
        try:
            params[key] = json.loads(raw)
        except ValueError:
            params[key] = raw
    return params


def run_search_command(args: argparse.Namespace) -> int:
    """Handle ``chronos-experiments search --spec FILE --algorithm NAME``.

    The spec file carries ``base`` (a scenario) and ``axes`` (dotted
    override paths to candidate value lists; ``grid`` is accepted as an
    alias so a sweep spec can be re-pointed at a search unchanged).  The
    search runs on the same executors and security machinery as
    ``sweep``; Ctrl-C prints the partial trial table and, with a
    ``--ledger``, re-running resumes with zero re-executed scenarios.
    """
    if not args.spec:
        print("search requires --spec FILE (a search specification JSON)", file=sys.stderr)
        return 2
    path = Path(args.spec)
    try:
        payload = json.loads(path.read_text())
    except OSError as error:
        print(f"cannot read search spec {path}: {error}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as error:
        print(f"invalid JSON in {path}: {error}", file=sys.stderr)
        return 2
    if not isinstance(payload, dict) or "base" not in payload:
        print(f"{path}: search spec must be an object with a 'base' scenario", file=sys.stderr)
        return 2
    axes = payload.get("axes", payload.get("grid"))
    if not isinstance(axes, dict) or not axes:
        print(
            f"{path}: search spec must map 'axes' (or 'grid') to non-empty value lists",
            file=sys.stderr,
        )
        return 2
    try:
        base = spec_from_dict(payload["base"])
    except SpecValidationError as error:
        print(f"{path}: {error}", file=sys.stderr)
        return 2
    try:
        algorithm_params = parse_algo_params(args.algo_param)
    except ValueError as error:
        print(f"search: {error}", file=sys.stderr)
        return 2
    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    distributed = args.executor == "distributed" or args.broker
    from repro.adaptive import run_search
    from repro.service import ServiceAuthError, ServiceError

    progress = ProgressLine() if progress_enabled(args) else None
    try:
        result = run_search(
            base,
            axes,
            algorithm=args.algorithm,
            objective=args.objective,
            algorithm_params=algorithm_params or None,
            max_trials=args.max_trials,
            batch=max(1, args.trial_batch),
            seed=args.seed,
            ledger=args.ledger,
            jobs=max(1, args.jobs),
            cache=cache,
            executor=args.executor,
            workers=args.workers,
            db=args.db,
            broker=args.broker,
            lease_timeout=args.lease_timeout if distributed else None,
            on_event=progress,
        )
    except ServiceAuthError as error:
        print(f"sweep service authentication failed: {error}", file=sys.stderr)
        return 2
    except ServiceError as error:
        print(f"sweep service error: {error}", file=sys.stderr)
        return 2
    except UnknownPluginError as error:
        # an unknown --algorithm or --objective name, listing what exists
        print(f"search: {error}", file=sys.stderr)
        return 2
    except (SpecValidationError, ValueError) as error:
        # e.g. axes an algorithm refuses (frontier_bisect needs exactly one
        # multi-valued axis), a mismatched --ledger, or a bad --broker URL
        print(f"search: {error}", file=sys.stderr)
        return 2
    finally:
        if progress is not None:
            progress.abort()
    _emit_result(result, args.csv)
    if result.cancelled:
        # Ctrl-C: the settled trials were printed above.  Resumability
        # needs the trial ledger — scenario caches alone cannot restore
        # the algorithm's state.
        hint = (
            "re-run the same command to resume from the ledger"
            if args.ledger
            else "trial state was not persisted — pass --ledger FILE to make "
            "cancelled searches resumable"
        )
        print(f"search cancelled ({hint})", file=sys.stderr)
        return 130
    return 0


def _emit_result(result, csv_option) -> None:
    """Print a sweep/search result as table/CSV, or write CSV to a file.

    Works on anything with ``to_csv``/``to_text`` and ``len`` —
    :class:`repro.api.SweepResult` and ``repro.adaptive.SearchResult``.
    """
    if isinstance(csv_option, str):
        Path(csv_option).write_text(result.to_csv())
        print(f"wrote {len(result)} result row(s) to {csv_option}")
    elif csv_option:
        print(result.to_csv())
    else:
        print(result.to_text())


def run_export_command(args: argparse.Namespace) -> int:
    """Handle ``chronos-experiments export --db FILE --csv OUT``.

    Dumps every result in a queue database's store as the same summary
    rows ``sweep`` prints (``SweepResult.to_rows``).  With ``--columns
    COL,COL,...`` the select is pushed down to the store's columnar
    ``summaries`` table — a SQL column read, no result-JSON parsing —
    which is the cheap path for analysis over 10⁵-scenario stores.
    """
    import csv as _csv

    from repro.distributed import SqliteResultStore, normalize_db_path

    if not args.db:
        print("export requires --db FILE (the queue database to read)", file=sys.stderr)
        return 2
    if not normalize_db_path(args.db).is_file():
        print(f"export: no queue database at {args.db}", file=sys.stderr)
        return 2
    if args.columns:
        columns = [column.strip() for column in args.columns.split(",") if column.strip()]
        try:
            with SqliteResultStore(args.db) as store:
                # Broker-written rows store raw payloads without summaries;
                # backfill before the column pushdown so a store populated
                # entirely by remote workers never exports empty.
                store.backfill_summaries()
                rows = store.summary_rows(columns)
        except ValueError as error:
            print(f"export: {error}", file=sys.stderr)
            return 2
        buffer = io.StringIO()
        writer = _csv.DictWriter(buffer, fieldnames=columns)
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
        if isinstance(args.csv, str):
            Path(args.csv).write_text(buffer.getvalue())
            print(f"wrote {len(rows)} result row(s) to {args.csv}")
        else:
            print(buffer.getvalue(), end="")
        return 0
    with SqliteResultStore(args.db) as store:
        results = store.results()
    outcome = SweepResult(
        results=tuple(results), executed=0, cache_hits=len(results), wall_time_s=0.0
    )
    # export is tabular by definition: CSV to stdout unless a file was given
    _emit_result(outcome, args.csv if isinstance(args.csv, str) else True)
    return 0


def run_serve_command(args: argparse.Namespace) -> int:
    """Handle ``chronos-experiments serve --db FILE --port N``.

    Runs the HTTP broker front-end in the foreground until interrupted.
    Remote fleets (``workers start --broker URL``) and sweeps (``sweep
    --broker URL``) coordinate through it without sharing a filesystem.

    ``--token`` (or ``CHRONOS_TOKEN``) requires a bearer token of every
    client; ``--certfile``/``--keyfile`` serve over TLS, making the
    service an ``https://`` target.
    """
    from repro.distributed import LeasePolicy
    from repro.service import TOKEN_ENV, make_server

    if not args.db:
        print("serve requires --db FILE (the queue database to serve)", file=sys.stderr)
        return 2
    if args.keyfile and not args.certfile:
        print("serve: --keyfile requires --certfile (the certificate to serve)", file=sys.stderr)
        return 2
    policy = LeasePolicy(
        timeout=args.lease_timeout, heartbeat_interval=args.lease_timeout / 4.0
    )
    token = args.token or os.environ.get(TOKEN_ENV) or None
    try:
        server = make_server(
            args.db,
            host=args.host,
            port=args.port,
            policy=policy,
            token=token,
            certfile=args.certfile,
            keyfile=args.keyfile,
        )
    except (OSError, ValueError) as error:  # ssl.SSLError is an OSError
        print(f"serve: cannot start service: {error}", file=sys.stderr)
        return 2
    host, port = server.server_address[:2]
    scheme = "https" if args.certfile else "http"
    guard = " (token required)" if token else ""
    print(
        f"serving queue {args.db} at {scheme}://{host}:{port}{guard} (ctrl-c to stop)",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("stopping service", file=sys.stderr)
    finally:
        server.server_close()
    return 0


def run_workers_command(args: argparse.Namespace) -> int:
    """Handle ``chronos-experiments workers start|status|drain``.

    The queue target is ``--db FILE`` (local/shared-filesystem sqlite) or
    ``--broker URL`` (a remote sweep service) — fleets behave identically
    against either.
    """
    from repro.distributed import (
        LeasePolicy,
        RestartPolicy,
        WorkerConfig,
        WorkerPool,
        open_broker,
    )

    actions = ("start", "status", "drain")
    action = args.experiments[1] if len(args.experiments) > 1 else None
    if action not in actions:
        print(
            f"workers requires an action: {', '.join(actions)} "
            "(e.g. 'chronos-experiments workers status --db queue.sqlite')",
            file=sys.stderr,
        )
        return 2
    target = args.broker or args.db
    if not target:
        print(
            "workers requires --db FILE (queue database) or --broker URL (sweep service)",
            file=sys.stderr,
        )
        return 2
    from repro.service import ServiceAuthError, ServiceError

    policy = LeasePolicy(
        timeout=args.lease_timeout, heartbeat_interval=args.lease_timeout / 4.0
    )
    try:
        broker = open_broker(target, policy=policy)
    except ValueError as error:
        # e.g. an unrecognized target scheme or a malformed shards: spec
        print(f"workers: {error}", file=sys.stderr)
        return 2
    try:
        if action == "drain":
            broker.drain()
            counts = broker.counts()
            print(
                f"draining {target}: workers will exit once the "
                f"{counts['pending']} pending task(s) are picked up"
            )
            return 0
        if action == "status":
            print(format_worker_status(broker.stats()))
            if args.expiring:
                # Dry run: what a lease sweep would do right now, without
                # doing it — works against remote brokers because the
                # service forwards now/dry_run instead of dropping them.
                requeued, exhausted = broker.requeue_expired(dry_run=True)
                print(
                    f"expiring (dry run): {requeued} lease(s) would requeue, "
                    f"{exhausted} would fail permanently"
                )
            return 0
        # start: run a worker fleet in the foreground until the queue is
        # drained (or settles, with --exit-when-idle), then report.
        # Crashed members are replaced under a per-member token bucket
        # (--restarts tokens, refilling every --restart-refill seconds).
        fleet = max(1, args.workers if args.workers is not None else 3)
        config = WorkerConfig(policy=policy, exit_when_idle=args.exit_when_idle)
        restart_policy = (
            RestartPolicy(burst=args.restarts, refill_s=args.restart_refill)
            if args.restarts > 0
            else None
        )
        pool = WorkerPool(target, workers=fleet, config=config, restart_policy=restart_policy)
        print(f"starting {fleet} worker(s) on {target} (ctrl-c to stop)", flush=True)
        try:
            with pool:
                # Keep supervising while members are pending a rate-limited
                # restart, even if every process is momentarily dead — the
                # bucket refill is what revives a crash-looped fleet.
                while pool.alive_count() > 0 or pool.pending_restarts():
                    for replacement in pool.supervise(broker):
                        print(f"restarted crashed worker as {replacement}", flush=True)
                    time.sleep(0.2)
                pool.join()
        except KeyboardInterrupt:
            print("stopping workers", file=sys.stderr)
        if pool.restarts_used:
            print(f"supervision: replaced {pool.restarts_used} crashed worker(s)")
        print(format_worker_status(broker.stats()))
        return 0
    except ServiceAuthError as error:
        print(f"sweep service authentication failed: {error}", file=sys.stderr)
        return 2
    except ServiceError as error:
        print(f"sweep service error: {error}", file=sys.stderr)
        return 2
    finally:
        broker.close()


def run_metrics_command(args: argparse.Namespace) -> int:
    """Handle ``chronos-experiments metrics --broker URL [--json]``.

    Fetches the *server's* telemetry registry — Prometheus text from
    ``GET /metrics`` by default, or the JSON snapshot over RPC with
    ``--json``.  Credentials resolve like every other client command
    (``--token``/``--cafile`` or the ``CHRONOS_*`` environment).
    """
    from repro.service import HttpBroker, ServiceAuthError, ServiceError, fetch_metrics

    if not args.broker:
        print(
            "metrics requires --broker URL (a running 'chronos-experiments serve' service)",
            file=sys.stderr,
        )
        return 2
    try:
        if args.json:
            broker = HttpBroker(args.broker)
            try:
                print(json.dumps(broker.metrics(), indent=2, sort_keys=True))
            finally:
                broker.close()
        else:
            sys.stdout.write(fetch_metrics(args.broker))
    except ServiceAuthError as error:
        print(f"sweep service authentication failed: {error}", file=sys.stderr)
        return 2
    except ServiceError as error:
        print(f"sweep service error: {error}", file=sys.stderr)
        return 2
    return 0


def run_trace_command(args: argparse.Namespace) -> int:
    """Handle ``chronos-experiments trace FINGERPRINT --db FILE | --broker URL``.

    Reconstructs one scenario's life from the queue's event log: queued
    (with the enqueuing sweep's span context), claimed by which worker,
    retried why, completed or failed — with relative timestamps.
    """
    from repro.distributed import open_broker
    from repro.service import ServiceAuthError, ServiceError

    fingerprint = args.experiments[1] if len(args.experiments) > 1 else None
    if not fingerprint:
        print(
            "trace requires a fingerprint "
            "(e.g. 'chronos-experiments trace <fingerprint> --db queue.sqlite')",
            file=sys.stderr,
        )
        return 2
    target = args.broker or args.db
    if not target:
        print(
            "trace requires --db FILE (queue database) or --broker URL (sweep service)",
            file=sys.stderr,
        )
        return 2
    try:
        broker = open_broker(target)
        try:
            rows = broker.events_for(fingerprint, limit=max(1, args.limit))
        finally:
            broker.close()
    except ValueError as error:
        # e.g. an unrecognized target scheme or a malformed shards: spec
        print(f"trace: {error}", file=sys.stderr)
        return 2
    except ServiceAuthError as error:
        print(f"sweep service authentication failed: {error}", file=sys.stderr)
        return 2
    except ServiceError as error:
        print(f"sweep service error: {error}", file=sys.stderr)
        return 2
    print(format_trace(fingerprint, rows))
    return 0 if rows else 1


def format_trace(fingerprint: str, rows: Sequence[Dict[str, object]]) -> str:
    """Render one fingerprint's event-log rows as a readable trace."""
    from repro.telemetry import parse_span_detail

    if not rows:
        return f"no events recorded for {fingerprint}"
    origin = float(rows[0]["ts"])
    lines = [f"trace {fingerprint} ({len(rows)} event(s))"]
    for row in rows:
        parts = [f"  +{float(row['ts']) - origin:8.3f}s  {str(row['kind']):<10}"]
        if row.get("worker_id"):
            parts.append(f"worker={row['worker_id']}")
        span = parse_span_detail(row.get("detail"))
        if span:
            if span.get("sweep_id"):
                parts.append(f"sweep={span['sweep_id']}")
            if span.get("trial_id"):
                parts.append(f"trial={span['trial_id']}")
            if span.get("note"):
                parts.append(str(span["note"]))
        elif row.get("detail"):
            parts.append(str(row["detail"]))
        lines.append("  ".join(parts))
    return "\n".join(lines)


def format_worker_status(stats: Dict[str, object]) -> str:
    """Render :meth:`repro.distributed.Broker.stats` as readable text."""
    tasks = stats["tasks"]
    lines = [f"queue: {stats['path']}"]
    if stats.get("url"):
        lines.append(f"service: {stats['url']}")
    lines.extend(
        [
            "tasks: " + "  ".join(f"{state}={count}" for state, count in tasks.items()),
            f"results: {stats['results']}",
            f"draining: {'yes' if stats['draining'] else 'no'}",
        ]
    )
    if stats.get("events"):
        # last event-log sequence: `events_since(N)` from here tails live
        line = f"events: {stats['events']} logged"
        retained = stats.get("events_retained")
        if retained is not None:
            # pruning keeps the log bounded; show what is still readable
            first = stats.get("events_first")
            line += f", {retained} retained"
            if retained and first is not None:
                line += f" (seq {first}..{stats['events']})"
        lines.insert(-1, line)
    shards = stats.get("shards") or []
    if shards:
        # Federation target: one row per shard (the top-level numbers
        # above are the merged totals), so a hot or unreachable shard is
        # visible without opening N databases.
        lines.append(f"shards ({len(shards)}):")
        header = (
            f"  {'shard':<40} {'pend':>5} {'lease':>5} {'done':>5} {'fail':>5} "
            f"{'results':>7} {'events':>12} {'claims/s':>8}"
        )
        lines.append(header)
        rows = [
            *shards,
            {
                "shard": "total",
                "tasks": stats["tasks"],
                "results": stats["results"],
                "events": stats["events"],
                "events_retained": stats.get("events_retained"),
                "events_first": stats.get("events_first"),
                "telemetry": stats.get("telemetry"),
            },
        ]
        for shard in rows:
            tasks_by_state = shard["tasks"]
            telemetry = shard.get("telemetry") or {}
            first = shard.get("events_first")
            retained = shard.get("events_retained") or 0
            span = f"{first}..{shard['events']}" if retained and first is not None else "-"
            lines.append(
                f"  {str(shard['shard']):<40} {tasks_by_state['pending']:>5} "
                f"{tasks_by_state['leased']:>5} {tasks_by_state['done']:>5} "
                f"{tasks_by_state['failed']:>5} {shard['results']:>7} {span:>12} "
                f"{float(telemetry.get('claim_rate_per_s', 0.0)):>8.2f}"
            )
    leased = stats.get("leased") or []
    if leased:
        # Stuck leases are the thing operators look for: attempts climbing
        # or an expiry in the past means a worker died with the task.
        lines.append("leases:")
        for item in leased:
            lines.append(
                f"  {item['fingerprint'][:12]}  worker={item['worker_id']}  "
                f"attempt={item['attempts']}/{item['max_attempts']}  "
                f"expires_in={item['expires_in_s']:.1f}s"
            )
    telemetry = stats.get("telemetry")
    if telemetry:
        # Recent activity from the shared event log (same numbers via
        # --db or --broker): claim/append rates and lease health.
        lines.append(
            "telemetry ({:.0f}s window): claims={} ({:.2f}/s)  "
            "lease_expiries={}  events={} ({:.2f}/s)".format(
                float(telemetry.get("window_s", 0.0)),
                telemetry.get("claims", 0),
                float(telemetry.get("claim_rate_per_s", 0.0)),
                telemetry.get("lease_expiries", 0),
                telemetry.get("events_appended", 0),
                float(telemetry.get("event_append_rate_per_s", 0.0)),
            )
        )
    workers = stats["workers"]
    if workers:
        lines.append("workers:")
        now = time.time()
        for worker in workers:
            age = max(0.0, now - worker["last_seen_at"])
            lines.append(
                f"  {worker['worker_id']}  pid={worker['pid']}  "
                f"last_seen={age:.1f}s ago  tasks_done={worker['tasks_done']}"
            )
    else:
        lines.append("workers: none registered")
    return "\n".join(lines)


def parse_scheduler_args(items: Optional[Sequence[str]]) -> Optional[List[str]]:
    """Flatten repeated/comma-separated ``--scheduler`` flags."""
    if not items:
        return None
    names = [name.strip() for item in items for name in item.split(",")]
    return [name for name in names if name] or None


def run_multijob_command(args: argparse.Namespace) -> int:
    """Handle ``chronos-experiments multijob --arrival … --load … --scheduler …``.

    Runs the multi-job cluster experiment (scheduler comparison at the
    given load plus the miss-rate-vs-load stability curve) through the
    same executor rerouting, progress line and security environment as
    the paper harnesses.
    """
    scale = ExperimentScale(args.scale)
    started = time.time()
    progress = ProgressLine() if progress_enabled(args) else None
    try:
        if args.executor or args.broker:
            set_default_executor(
                args.executor, workers=args.workers, db=args.db, broker=args.broker
            )
        if progress is not None:
            set_default_on_event(progress)
        tables = _tables_of(
            run_multijob(
                scale,
                seed=args.seed,
                jobs=max(1, args.jobs),
                arrival=args.arrival,
                load=args.load,
                schedulers=parse_scheduler_args(args.scheduler),
            )
        )
    except (SpecValidationError, UnknownPluginError, ValueError) as error:
        # e.g. an unknown --scheduler name or a non-positive --load
        print(f"multijob: {error}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print("interrupted: multijob experiment stopped mid-sweep", file=sys.stderr)
        return 130
    except Exception as error:
        from repro.service import ServiceAuthError, ServiceError

        if isinstance(error, ServiceAuthError):
            print(f"sweep service authentication failed: {error}", file=sys.stderr)
            return 2
        if isinstance(error, ServiceError):
            print(f"sweep service error: {error}", file=sys.stderr)
            return 2
        raise
    finally:
        if args.executor or args.broker:
            set_default_executor(None)
        if progress is not None:
            set_default_on_event(None)
            progress.abort()
    for table in tables:
        print(table.to_text())
        print()
    print(f"completed {len(tables)} tables in {time.time() - started:.1f}s")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list:
        for name in EXPERIMENTS:
            print(name)
        return 0
    previous_env = apply_security_args(args)
    try:
        if args.experiments and args.experiments[0] == "sweep":
            return run_sweep_command(args)
        if args.experiments and args.experiments[0] == "search":
            return run_search_command(args)
        if args.experiments and args.experiments[0] == "workers":
            return run_workers_command(args)
        if args.experiments and args.experiments[0] == "serve":
            return run_serve_command(args)
        if args.experiments and args.experiments[0] == "metrics":
            return run_metrics_command(args)
        if args.experiments and args.experiments[0] == "trace":
            return run_trace_command(args)
        if args.experiments and args.experiments[0] == "export":
            return run_export_command(args)
        if args.experiments and args.experiments[0] == "multijob":
            return run_multijob_command(args)
        return run_harness_commands(args)
    finally:
        restore_environment(previous_env)


def run_harness_commands(args: argparse.Namespace) -> int:
    """Run the named experiment harnesses (the default command path)."""
    scale = ExperimentScale(args.scale)
    started = time.time()
    progress = ProgressLine() if progress_enabled(args) else None
    try:
        if args.executor or args.broker:
            # Reroute every run_specs call in the harnesses without
            # threading a parameter through each experiment.
            set_default_executor(
                args.executor, workers=args.workers, db=args.db, broker=args.broker
            )
        if progress is not None:
            # Same trick for the event stream: every harness sweep feeds
            # one progress line without any experiment knowing about it.
            set_default_on_event(progress)
        tables = run_experiments(
            args.experiments, scale=scale, seed=args.seed, jobs=max(1, args.jobs)
        )
    except UnknownExperimentError as error:
        print(error, file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        # Harness tables need every scenario, so there is no partial
        # table to print — but the interruption exits cleanly (130, the
        # conventional SIGINT status), not as a traceback.  The sweep
        # layer already returned/kept whatever work had finished.
        print("interrupted: experiment harness stopped mid-sweep", file=sys.stderr)
        return 130
    except Exception as error:
        # Service errors can only have been raised if repro.service is
        # already loaded, so importing it here costs sqlite-only (and
        # plain harness) invocations nothing.
        from repro.service import ServiceAuthError, ServiceError

        if isinstance(error, ServiceAuthError):
            print(f"sweep service authentication failed: {error}", file=sys.stderr)
            return 2
        if isinstance(error, ServiceError):
            print(f"sweep service error: {error}", file=sys.stderr)
            return 2
        raise
    finally:
        if args.executor or args.broker:
            # main() may run in-process (tests, embedding callers): do not
            # leak the default onto unrelated later run_specs calls.
            set_default_executor(None)
        if progress is not None:
            set_default_on_event(None)
            progress.abort()
    for table in tables:
        print(table.to_text())
        print()
    print(f"completed {len(tables)} tables in {time.time() - started:.1f}s")
    return 0


if __name__ == "__main__":  # pragma: no cover - manual invocation
    sys.exit(main())
