"""Command-line entry point for the experiment harness.

Installed as ``chronos-experiments``.  Examples::

    chronos-experiments --list
    chronos-experiments figure2 --scale smoke
    chronos-experiments all --scale small --seed 1
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, Iterable, List, Optional

from repro.experiments.common import ExperimentScale, ExperimentTable
from repro.experiments.figure2 import run_figure2
from repro.experiments.figure3 import run_figure3
from repro.experiments.figure4 import run_figure4
from repro.experiments.figure5 import run_figure5
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2


def _tables_of(result) -> List[ExperimentTable]:
    """Normalise an experiment result to a flat list of tables."""
    if isinstance(result, ExperimentTable):
        return [result]
    if isinstance(result, dict):
        return list(result.values())
    raise TypeError(f"unexpected experiment result type: {type(result)!r}")


#: Registry of runnable experiments.
EXPERIMENTS: Dict[str, Callable[..., object]] = {
    "figure2": run_figure2,
    "table1": run_table1,
    "table2": run_table2,
    "figure3": run_figure3,
    "figure4": run_figure4,
    "figure5": run_figure5,
}


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for ``chronos-experiments``."""
    parser = argparse.ArgumentParser(
        prog="chronos-experiments",
        description="Reproduce the tables and figures of the Chronos paper.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=["all"],
        help="experiment names (figure2, table1, table2, figure3, figure4, figure5) or 'all'",
    )
    parser.add_argument(
        "--scale",
        choices=[scale.value for scale in ExperimentScale],
        default=ExperimentScale.SMALL.value,
        help="experiment scale (smoke: seconds, small: default, full: paper scale)",
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument("--list", action="store_true", help="list available experiments and exit")
    return parser


def run_experiments(
    names: Iterable[str], scale: ExperimentScale, seed: int
) -> List[ExperimentTable]:
    """Run the named experiments and return all produced tables."""
    selected = list(names)
    if not selected or "all" in selected:
        selected = list(EXPERIMENTS)
    unknown = [name for name in selected if name not in EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiments: {', '.join(unknown)}")
    tables: List[ExperimentTable] = []
    for name in selected:
        tables.extend(_tables_of(EXPERIMENTS[name](scale=scale, seed=seed)))
    return tables


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list:
        for name in EXPERIMENTS:
            print(name)
        return 0
    scale = ExperimentScale(args.scale)
    started = time.time()
    try:
        tables = run_experiments(args.experiments, scale=scale, seed=args.seed)
    except KeyError as error:
        print(error, file=sys.stderr)
        return 2
    for table in tables:
        print(table.to_text())
        print()
    print(f"completed {len(tables)} tables in {time.time() - started:.1f}s")
    return 0


if __name__ == "__main__":  # pragma: no cover - manual invocation
    sys.exit(main())
