"""Command-line entry point for the experiment harness.

Installed as ``chronos-experiments``.  Examples::

    chronos-experiments --list
    chronos-experiments figure2 --scale smoke --jobs 4
    chronos-experiments all --scale small --seed 1
    chronos-experiments sweep --spec sweep.json --jobs 4 --cache-dir .cache

The ``sweep`` command runs a declarative scenario sweep from a JSON file
of the form::

    {
      "base": { "workload": {"kind": "google-trace", "params": {"num_jobs": 50}},
                "strategy": "s-resume" },
      "grid": { "strategy": ["clone", "s-restart", "s-resume"],
                "seed": [0, 1] }
    }

``base`` is a :class:`repro.api.ScenarioSpec` dictionary; ``grid`` maps
dotted override paths to value lists (cartesian product), and an optional
``overrides`` list of mappings can be given instead of (or in addition
to) ``grid``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.api import ResultCache, ScenarioSpec, SpecValidationError, Sweep
from repro.experiments.common import ExperimentScale, ExperimentTable
from repro.experiments.figure2 import run_figure2
from repro.experiments.figure3 import run_figure3
from repro.experiments.figure4 import run_figure4
from repro.experiments.figure5 import run_figure5
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2


class UnknownExperimentError(KeyError):
    """Unknown experiment name(s); the message lists what is available."""

    def __init__(self, unknown: Sequence[str], available: Iterable[str]):
        self.unknown = tuple(unknown)
        self.available = tuple(available)
        self.message = (
            f"unknown experiments: {', '.join(self.unknown)} "
            f"(available: {', '.join(self.available)}, all)"
        )
        super().__init__(self.message)

    def __str__(self) -> str:
        # KeyError.__str__ would repr() the message, adding stray quotes.
        return self.message


def _tables_of(result) -> List[ExperimentTable]:
    """Normalise an experiment result to a flat list of tables."""
    if isinstance(result, ExperimentTable):
        return [result]
    if isinstance(result, dict):
        return list(result.values())
    raise TypeError(f"unexpected experiment result type: {type(result)!r}")


#: Registry of runnable experiments.
EXPERIMENTS: Dict[str, Callable[..., object]] = {
    "figure2": run_figure2,
    "table1": run_table1,
    "table2": run_table2,
    "figure3": run_figure3,
    "figure4": run_figure4,
    "figure5": run_figure5,
}


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for ``chronos-experiments``."""
    parser = argparse.ArgumentParser(
        prog="chronos-experiments",
        description="Reproduce the tables and figures of the Chronos paper.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=["all"],
        help=(
            "experiment names (figure2, table1, table2, figure3, figure4, figure5), "
            "'all', or 'sweep' to run a scenario sweep from --spec"
        ),
    )
    parser.add_argument(
        "--scale",
        choices=[scale.value for scale in ExperimentScale],
        default=ExperimentScale.SMALL.value,
        help="experiment scale (smoke: seconds, small: default, full: paper scale)",
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for independent simulations (default: 1, inline)",
    )
    parser.add_argument(
        "--spec",
        help="sweep specification JSON file (used by the 'sweep' command)",
    )
    parser.add_argument(
        "--cache-dir",
        help="fingerprint-keyed result cache directory (used by the 'sweep' command)",
    )
    parser.add_argument(
        "--csv",
        action="store_true",
        help="emit sweep results as CSV instead of an aligned table",
    )
    parser.add_argument("--list", action="store_true", help="list available experiments and exit")
    return parser


def run_experiments(
    names: Iterable[str], scale: ExperimentScale, seed: int, jobs: int = 1
) -> List[ExperimentTable]:
    """Run the named experiments and return all produced tables."""
    selected = list(names)
    if not selected or "all" in selected:
        selected = list(EXPERIMENTS)
    unknown = [name for name in selected if name not in EXPERIMENTS]
    if unknown:
        raise UnknownExperimentError(unknown, EXPERIMENTS)
    tables: List[ExperimentTable] = []
    for name in selected:
        tables.extend(_tables_of(EXPERIMENTS[name](scale=scale, seed=seed, jobs=jobs)))
    return tables


def run_sweep_command(args: argparse.Namespace) -> int:
    """Handle ``chronos-experiments sweep --spec FILE``."""
    if not args.spec:
        print("sweep requires --spec FILE (a sweep specification JSON)", file=sys.stderr)
        return 2
    path = Path(args.spec)
    try:
        payload = json.loads(path.read_text())
    except OSError as error:
        print(f"cannot read sweep spec {path}: {error}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as error:
        print(f"invalid JSON in {path}: {error}", file=sys.stderr)
        return 2
    if not isinstance(payload, dict) or "base" not in payload:
        print(f"{path}: sweep spec must be an object with a 'base' scenario", file=sys.stderr)
        return 2
    try:
        base = ScenarioSpec.from_dict(payload["base"])
        overrides_payload = payload.get("overrides", [])
        if isinstance(overrides_payload, (str, bytes)) or not isinstance(overrides_payload, list):
            raise SpecValidationError("overrides", "must be a list of override mappings")
        overrides = list(overrides_payload)
        grid = payload.get("grid")
        if grid:
            overrides.extend(Sweep.grid_overrides(grid))
        sweep = Sweep(base, overrides or None)
    except SpecValidationError as error:
        print(f"{path}: {error}", file=sys.stderr)
        return 2
    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    result = sweep.run(jobs=max(1, args.jobs), cache=cache)
    print(result.to_csv() if args.csv else result.to_text())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list:
        for name in EXPERIMENTS:
            print(name)
        return 0
    if args.experiments and args.experiments[0] == "sweep":
        return run_sweep_command(args)
    scale = ExperimentScale(args.scale)
    started = time.time()
    try:
        tables = run_experiments(
            args.experiments, scale=scale, seed=args.seed, jobs=max(1, args.jobs)
        )
    except UnknownExperimentError as error:
        print(error, file=sys.stderr)
        return 2
    for table in tables:
        print(table.to_text())
        print()
    print(f"completed {len(tables)} tables in {time.time() - started:.1f}s")
    return 0


if __name__ == "__main__":  # pragma: no cover - manual invocation
    sys.exit(main())
