"""Figure 4: sweeping the Pareto tail index ``beta``.

Trace-driven simulation comparing Hadoop-NS, Hadoop-S, Clone, S-Restart
and S-Resume while forcing every job's tail index to a common ``beta`` in
``1.1 ... 1.9`` and setting each job's deadline to twice its mean task
execution time.

Expected shape: a smaller beta means a heavier tail, so every strategy's
cost is higher at small beta and decreases with beta; the optimal ``r``
also decreases with beta; the Chronos strategies dominate the baselines
in utility across the whole range.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.core.model import StrategyName
from repro.experiments.common import ExperimentScale, ExperimentTable, reference_pocd, run_strategy_suite
from repro.experiments.table1 import trace_jobs
from repro.hadoop.config import HadoopConfig
from repro.simulator.cluster import ClusterConfig
from repro.strategies import StrategyParameters

#: beta sweep (paper's Figure 4 x-axis).
BETA_VALUES = (1.1, 1.3, 1.5, 1.7, 1.9)

#: Strategies compared in Figure 4.
FIGURE4_STRATEGIES = (
    StrategyName.HADOOP_NO_SPECULATION,
    StrategyName.HADOOP_SPECULATION,
    StrategyName.CLONE,
    StrategyName.SPECULATIVE_RESTART,
    StrategyName.SPECULATIVE_RESUME,
)

THETA = 1e-4
TAU_EST_FACTOR = 0.3
TAU_KILL_FACTOR = 0.8


def run_figure4(
    scale: ExperimentScale = ExperimentScale.SMALL,
    seed: int = 0,
    beta_values: Sequence[float] = BETA_VALUES,
    jobs: int = 1,
) -> Dict[str, ExperimentTable]:
    """Reproduce Figure 4(a)-(c).

    Returns tables keyed by ``"pocd"``, ``"cost"`` and ``"utility"``; one
    row per beta, one column per strategy.  ``jobs > 1`` runs each beta's
    strategy suite in parallel worker processes.
    """
    columns = [name.display_name for name in FIGURE4_STRATEGIES]
    tables = {
        "pocd": ExperimentTable("figure4a", "PoCD vs beta", columns),
        "cost": ExperimentTable("figure4b", "Cost vs beta", columns),
        "utility": ExperimentTable("figure4c", "Utility vs beta", columns),
    }
    cluster = ClusterConfig(num_nodes=0)
    hadoop = HadoopConfig()
    params = StrategyParameters(
        tau_est=TAU_EST_FACTOR,
        tau_kill=TAU_KILL_FACTOR,
        theta=THETA,
        unit_price=1.0,
        timing_relative_to_tmin=True,
    )

    for beta in beta_values:
        trace = trace_jobs(scale, seed, beta_override=beta)
        reports = run_strategy_suite(
            trace,
            FIGURE4_STRATEGIES,
            params,
            cluster=cluster,
            hadoop=hadoop,
            seed=seed,
            parallel_jobs=jobs,
        )
        r_min = reference_pocd(reports)
        label = f"beta={beta:.1f}"
        tables["pocd"].add_row(
            label, {name.display_name: reports[name].pocd for name in FIGURE4_STRATEGIES}
        )
        tables["cost"].add_row(
            label, {name.display_name: reports[name].mean_cost for name in FIGURE4_STRATEGIES}
        )
        tables["utility"].add_row(
            label,
            {
                name.display_name: reports[name].net_utility(r_min_pocd=r_min, theta=THETA)
                for name in FIGURE4_STRATEGIES
            },
        )
    for table in tables.values():
        table.notes = (
            "deadline = 2 x mean task time per job (deadline_factor=2 in the trace config), "
            f"theta={THETA}"
        )
    return tables
