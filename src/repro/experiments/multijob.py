"""Multi-job cluster experiment: scheduler comparison + stability frontier.

Reproduces the two cluster-scale curves of the multi-job formulation:

* **Scheduler comparison** — at a fixed offered load, run the same open
  Poisson arrival stream under each admission policy and compare the
  deadline-miss rate, sojourn time, queue wait and slot utilization.
* **Miss-rate vs load** — sweep the offered load for one scheduler and
  watch the deadline-miss rate climb and the queue-stability probe trip
  as the system crosses its stability frontier (load ≈ 1).

Offered load is normalized the queueing-theory way: ``load = (mean job
slot-seconds) / (inter_arrival * total_slots)``, so ``load=1.0`` is the
saturation point of the shared slot pool.  All scenarios run through
:func:`repro.api.run_specs`, so ``--executor``/``--broker`` reroute them
like any other harness sweep, with fingerprint-keyed caching.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.api import run_specs
from repro.cluster import ArrivalSpec, ClusterSpec
from repro.experiments.common import ExperimentScale, ExperimentTable, require_complete
from repro.traces.workloads import BENCHMARKS, get_benchmark

#: Cluster shape of the multi-job experiment (small enough that
#: contention is real at every scale).
CLUSTER = {"num_nodes": 4, "slots_per_node": 4}

#: Admission policies compared by default.
DEFAULT_SCHEDULERS = ("fifo", "deadline_edf", "spec_budget")

#: Offered loads of the stability-frontier curve.
DEFAULT_LOADS = (0.5, 0.7, 0.9, 1.1)

#: Jobs per scenario at full scale.
FULL_NUM_JOBS = 80

#: JVM startup cost assumed by the load normalization (HadoopConfig default).
_JVM_STARTUP_MEAN = 3.0


def mean_job_slot_seconds(benchmark: str) -> float:
    """Expected slot-seconds one job occupies (Pareto mean + JVM start)."""
    if benchmark == "mixed":
        profiles = [BENCHMARKS[name] for name in sorted(BENCHMARKS)]
    else:
        profiles = [get_benchmark(benchmark)]
    totals = []
    for profile in profiles:
        mean_task = profile.tmin * profile.beta / (profile.beta - 1.0)
        totals.append(profile.num_tasks * (mean_task + _JVM_STARTUP_MEAN))
    return sum(totals) / len(totals)


def inter_arrival_for_load(load: float, benchmark: str, total_slots: int) -> float:
    """Mean inter-arrival time that offers ``load`` to ``total_slots``."""
    if load <= 0:
        raise ValueError("load must be positive")
    if total_slots < 1:
        raise ValueError("total_slots must be positive")
    return mean_job_slot_seconds(benchmark) / (load * total_slots)


def cluster_spec(
    *,
    arrival: str = "poisson",
    load: float = 0.8,
    scheduler: str = "fifo",
    benchmark: str = "sort",
    num_jobs: int = 20,
    strategy: str = "s-resume",
    seed: int = 0,
) -> ClusterSpec:
    """One multi-job scenario of the experiment grid."""
    total_slots = CLUSTER["num_nodes"] * CLUSTER["slots_per_node"]
    if arrival == "poisson":
        arrival_spec = ArrivalSpec(
            "poisson",
            {
                "benchmark": benchmark,
                "num_jobs": num_jobs,
                "inter_arrival": inter_arrival_for_load(load, benchmark, total_slots),
            },
        )
    elif arrival == "batch":
        arrival_spec = ArrivalSpec(
            "batch",
            {"workload": {"kind": "benchmark", "params": {"name": benchmark, "num_jobs": num_jobs}}},
        )
    elif arrival == "trace":
        arrival_spec = ArrivalSpec(
            "trace",
            {
                "workload": {
                    "kind": "benchmark",
                    "params": {
                        "name": benchmark,
                        "num_jobs": num_jobs,
                        "inter_arrival": inter_arrival_for_load(load, benchmark, total_slots),
                    },
                }
            },
        )
    else:
        raise ValueError(f"unknown arrival model {arrival!r} (batch, poisson, trace)")
    return ClusterSpec(
        arrival=arrival_spec,
        strategy=strategy,
        scheduler=scheduler,
        cluster=dict(CLUSTER),
        seed=seed,
    )


def run_multijob(
    scale: ExperimentScale = ExperimentScale.SMALL,
    seed: int = 0,
    jobs: int = 1,
    *,
    arrival: str = "poisson",
    load: float = 0.8,
    schedulers: Optional[Sequence[str]] = None,
    loads: Optional[Iterable[float]] = None,
    benchmark: str = "sort",
) -> Dict[str, ExperimentTable]:
    """Run the multi-job cluster experiment.

    Returns two tables: ``schedulers`` (policy comparison at ``load``)
    and ``load_curve`` (miss rate vs offered load for the first
    scheduler, with the queue-stability probe).
    """
    scheduler_names: List[str] = list(schedulers or DEFAULT_SCHEDULERS)
    load_points = [float(point) for point in (loads or DEFAULT_LOADS)]
    num_jobs = scale.scaled_jobs(FULL_NUM_JOBS, minimum=8)

    def spec_for(scheduler: str, point: float) -> ClusterSpec:
        return cluster_spec(
            arrival=arrival,
            load=point,
            scheduler=scheduler,
            benchmark=benchmark,
            num_jobs=num_jobs,
            seed=seed,
        )

    comparison_specs = [spec_for(name, load) for name in scheduler_names]
    curve_scheduler = scheduler_names[0]
    curve_specs = [spec_for(curve_scheduler, point) for point in load_points]

    # One sweep for everything: duplicates (the curve point at `load`
    # under the first scheduler) collapse onto one fingerprint.
    sweep = run_specs(comparison_specs + curve_specs, jobs=jobs)
    require_complete(sweep)
    by_fingerprint = {result.fingerprint: result for result in sweep.results}

    schedulers_table = ExperimentTable(
        experiment_id="multijob-schedulers",
        title=f"Admission policies at load {load:.2f} ({arrival} arrivals, {benchmark})",
        columns=[
            "miss_rate",
            "mean_sojourn_s",
            "mean_queue_wait_s",
            "slot_utilization",
            "utility",
        ],
        notes=(
            f"{num_jobs} jobs per scenario on {CLUSTER['num_nodes']}x"
            f"{CLUSTER['slots_per_node']} slots; per-job strategy s-resume."
        ),
    )
    for name, spec in zip(scheduler_names, comparison_specs):
        report = by_fingerprint[spec.fingerprint()].report
        schedulers_table.add_row(
            name,
            {
                "miss_rate": report.miss_rate,
                "mean_sojourn_s": report.mean_sojourn_s,
                "mean_queue_wait_s": report.mean_queue_wait_s,
                "slot_utilization": report.slot_utilization,
                "utility": report.net_utility(
                    r_min_pocd=spec.strategy_params.r_min_pocd,
                    theta=spec.strategy_params.theta,
                ),
            },
        )

    curve_table = ExperimentTable(
        experiment_id="multijob-load-curve",
        title=f"Miss rate vs offered load ({curve_scheduler}, {arrival} arrivals)",
        columns=[
            "load",
            "miss_rate",
            "mean_sojourn_s",
            "queue_growth_rate",
            "queue_stable",
        ],
        notes="queue_stable=0 marks the stability frontier being crossed.",
    )
    for point, spec in zip(load_points, curve_specs):
        report = by_fingerprint[spec.fingerprint()].report
        curve_table.add_row(
            f"load={point:.2f}",
            {
                "load": point,
                "miss_rate": report.miss_rate,
                "mean_sojourn_s": report.mean_sojourn_s,
                "queue_growth_rate": report.queue_growth_rate,
                "queue_stable": float(report.queue_stable),
            },
        )

    return {"schedulers": schedulers_table, "load_curve": curve_table}
