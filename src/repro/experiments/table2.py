"""Table II: sweeping the attempt-pruning time ``tau_kill``.

Trace-driven simulation that varies ``tau_kill`` in ``{0.4, 0.6, 0.8} *
tmin`` while keeping ``tau_est`` fixed (0 for Clone, ``0.3 * tmin`` for
the speculative strategies).

Expected shape: a larger ``tau_kill`` lets clone/speculative attempts run
longer before pruning, so cost increases monotonically with ``tau_kill``;
PoCD is not monotone because the optimizer reduces ``r`` to compensate
for the higher per-attempt cost.
"""

from __future__ import annotations

from typing import List

from repro.core.model import StrategyName
from repro.experiments.common import ExperimentScale, ExperimentTable
from repro.experiments.table1 import THETA, _fill_rows, trace_jobs

#: tau_kill sweep values, as multiples of tmin (paper's Table II).
TAU_KILL_FACTORS = (0.4, 0.6, 0.8)
#: Fixed detection time for the speculative strategies.
TAU_EST_FACTOR = 0.3


def run_table2(
    scale: ExperimentScale = ExperimentScale.SMALL,
    seed: int = 0,
    theta: float = THETA,
    jobs: int = 1,
) -> ExperimentTable:
    """Reproduce Table II (PoCD / cost / utility vs ``tau_kill``).

    ``jobs > 1`` runs the independent (strategy, timing) rows in parallel
    worker processes.
    """
    trace = trace_jobs(scale, seed)
    table = ExperimentTable(
        "table2",
        "Performance with varying tau_kill (tau_est fixed)",
        ["tau_est", "tau_kill", "pocd", "cost", "utility"],
    )

    rows: List[tuple] = []
    for factor in TAU_KILL_FACTORS:
        rows.append((StrategyName.CLONE, 0.0, factor))
    for factor in TAU_KILL_FACTORS:
        rows.append((StrategyName.SPECULATIVE_RESTART, TAU_EST_FACTOR, factor))
    for factor in TAU_KILL_FACTORS:
        rows.append((StrategyName.SPECULATIVE_RESUME, TAU_EST_FACTOR, factor))

    _fill_rows(table, trace, rows, seed=seed, theta=theta, parallel_jobs=jobs)
    table.notes = (
        f"{len(trace)} trace jobs, timing expressed as multiples of each job's tmin, "
        f"theta={theta}"
    )
    return table
