"""Figure 2: testbed comparison across the four benchmarks.

The paper runs 100 MapReduce jobs (10 tasks each) per benchmark on a
40-node testbed and reports, for Hadoop-NS, Hadoop-S, Clone, S-Restart
and S-Resume:

* Figure 2(a): PoCD per benchmark,
* Figure 2(b): cost per benchmark (machine time x EC2 spot price),
* Figure 2(c): net utility per benchmark (Rmin = Hadoop-NS's PoCD).

Deadlines are 100 s (Sort, TeraSort) and 150 s (SecondarySort,
WordCount); ``tau_est = 40 s``, ``tau_kill = 80 s``, ``theta = 1e-4``.

Expected shape: Hadoop-NS has the lowest PoCD and a high cost (stragglers
run long); Clone has the highest cost of the Chronos strategies;
S-Resume achieves the highest PoCD at the lowest cost and hence the best
utility.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.core.model import StrategyName
from repro.experiments.common import (
    ExperimentScale,
    ExperimentTable,
    reference_pocd,
    run_strategy_suite,
)
from repro.hadoop.config import HadoopConfig
from repro.simulator.cluster import ClusterConfig
from repro.strategies import StrategyParameters
from repro.traces.spot_price import SpotPriceConfig, SpotPriceHistory
from repro.traces.workloads import BENCHMARKS, benchmark_jobs

#: Strategies compared in Figure 2, in the paper's plotting order.
FIGURE2_STRATEGIES = (
    StrategyName.HADOOP_NO_SPECULATION,
    StrategyName.HADOOP_SPECULATION,
    StrategyName.CLONE,
    StrategyName.SPECULATIVE_RESTART,
    StrategyName.SPECULATIVE_RESUME,
)

#: Paper parameters for the testbed experiments.
TAU_EST = 40.0
TAU_KILL = 80.0
THETA = 1e-4
JOBS_PER_BENCHMARK = 100


def run_figure2(
    scale: ExperimentScale = ExperimentScale.SMALL,
    seed: int = 0,
    spot_price: Optional[SpotPriceHistory] = None,
    jobs: int = 1,
) -> Dict[str, ExperimentTable]:
    """Reproduce Figure 2(a)-(c).

    Returns a mapping with keys ``"pocd"``, ``"cost"`` and ``"utility"``,
    each an :class:`ExperimentTable` with one row per benchmark and one
    column per strategy.  ``jobs > 1`` runs the per-strategy simulations
    of each benchmark in parallel worker processes.
    """
    num_jobs = scale.scaled_jobs(JOBS_PER_BENCHMARK, minimum=20)
    spot_price = spot_price if spot_price is not None else SpotPriceHistory(
        SpotPriceConfig(mean_price=1.0, seed=seed + 7)
    )
    unit_price = spot_price.average_price()
    params = StrategyParameters(
        tau_est=TAU_EST, tau_kill=TAU_KILL, theta=THETA, unit_price=unit_price
    )
    cluster = ClusterConfig(num_nodes=40, slots_per_node=8)
    hadoop = HadoopConfig()

    columns = [name.display_name for name in FIGURE2_STRATEGIES]
    tables = {
        "pocd": ExperimentTable("figure2a", "PoCD per benchmark", columns),
        "cost": ExperimentTable("figure2b", "Cost per benchmark", columns),
        "utility": ExperimentTable("figure2c", "Net utility per benchmark", columns),
    }

    rng = np.random.default_rng(seed)
    for benchmark in sorted(BENCHMARKS):
        benchmark_job_stream = benchmark_jobs(
            benchmark,
            num_jobs=num_jobs,
            inter_arrival=5.0,
            unit_price=unit_price,
            rng=rng,
        )
        reports = run_strategy_suite(
            benchmark_job_stream,
            FIGURE2_STRATEGIES,
            params,
            cluster=cluster,
            hadoop=hadoop,
            seed=seed,
            parallel_jobs=jobs,
        )
        r_min = reference_pocd(reports)
        tables["pocd"].add_row(
            benchmark, {name.display_name: reports[name].pocd for name in FIGURE2_STRATEGIES}
        )
        tables["cost"].add_row(
            benchmark,
            {name.display_name: reports[name].mean_cost for name in FIGURE2_STRATEGIES},
        )
        tables["utility"].add_row(
            benchmark,
            {
                name.display_name: reports[name].net_utility(r_min_pocd=r_min, theta=THETA)
                for name in FIGURE2_STRATEGIES
            },
        )
    for table in tables.values():
        table.notes = (
            f"{num_jobs} jobs/benchmark, 10 tasks/job, tau_est={TAU_EST}s, "
            f"tau_kill={TAU_KILL}s, theta={THETA}, Rmin=PoCD(Hadoop-NS)"
        )
    return tables
