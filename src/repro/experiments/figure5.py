"""Figure 5: histogram of the optimal number of extra attempts ``r``.

For every job in the trace, run the joint PoCD/cost optimization
(Algorithm 1) for the Clone and S-Resume strategies at two tradeoff
factors (``theta = 1e-5`` and ``theta = 1e-4``) and histogram the optimal
``r`` values.

Expected shape: increasing theta shifts the histogram toward smaller
``r`` for both strategies; S-Resume's optimal ``r`` values are larger
than Clone's at the same theta (its extra attempts are cheap because they
only run in the speculation window and only for detected stragglers).
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.core.model import StrategyName
from repro.core.optimizer import ChronosOptimizer
from repro.experiments.common import ExperimentScale, ExperimentTable
from repro.experiments.table1 import trace_jobs

#: Tradeoff factors shown in the paper's histogram.
THETA_VALUES = (1e-5, 1e-4)
#: Strategies shown in the paper's histogram.
FIGURE5_STRATEGIES = (StrategyName.CLONE, StrategyName.SPECULATIVE_RESUME)
#: Timing (multiples of tmin) used when building the per-job model.
TAU_EST_FACTOR = 0.3
TAU_KILL_FACTOR = 0.8
#: Histogram support reported in the paper.
R_BINS = tuple(range(0, 7))


def run_figure5(
    scale: ExperimentScale = ExperimentScale.SMALL,
    seed: int = 0,
    theta_values: Sequence[float] = THETA_VALUES,
    jobs: int = 1,
) -> ExperimentTable:
    """Reproduce Figure 5: frequency of each optimal ``r`` value.

    Returns a table with one row per (strategy, theta) pair and one column
    per ``r`` bin (``r=0`` ... ``r=6+``).  ``jobs`` is accepted for CLI
    uniformity with the simulation harnesses; this experiment only runs
    the closed-form optimizer, which is cheap enough to stay inline.
    """
    del jobs
    trace = trace_jobs(scale, seed)
    columns = [f"r={r}" for r in R_BINS] + ["r>=7"]
    table = ExperimentTable("figure5", "Histogram of the optimal r", columns)

    for strategy in FIGURE5_STRATEGIES:
        for theta in theta_values:
            histogram: Dict[str, int] = {column: 0 for column in columns}
            for spec in trace:
                tau_est = TAU_EST_FACTOR * spec.tmin
                tau_kill = TAU_KILL_FACTOR * spec.tmin
                model = spec.to_straggler_model(tau_est, tau_kill)
                optimizer = ChronosOptimizer(model, theta=theta, unit_price=spec.unit_price)
                result = optimizer.optimize(strategy)
                if result.r_opt in R_BINS:
                    histogram[f"r={result.r_opt}"] += 1
                else:
                    histogram["r>=7"] += 1
            table.add_row(f"{strategy.display_name} theta={theta:g}", histogram)
    table.notes = f"{len(trace)} trace jobs, per-job Algorithm-1 optimization"
    return table
