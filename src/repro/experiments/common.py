"""Shared infrastructure of the experiment harness.

Every experiment produces an :class:`ExperimentTable` — a titled list of
rows with named columns — so results can be rendered as text (mirroring
the paper's tables/figure series), compared in tests, and consumed by the
benchmark suite without re-parsing.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.api import ScenarioSpec, WorkloadSpec, job_spec_to_dict, run_specs
from repro.core.model import StrategyName
from repro.hadoop.config import HadoopConfig
from repro.simulator.cluster import ClusterConfig
from repro.simulator.entities import JobSpec
from repro.simulator.metrics import SimulationReport
from repro.strategies import StrategyParameters


class ExperimentScale(str, enum.Enum):
    """How big to make an experiment run.

    * ``SMOKE`` — seconds; used by the test suite.
    * ``SMALL`` — tens of seconds; used by the benchmark harness defaults.
    * ``FULL`` — closest to the paper's scale; minutes.
    """

    SMOKE = "smoke"
    SMALL = "small"
    FULL = "full"

    @property
    def job_multiplier(self) -> float:
        """Scaling factor applied to job counts."""
        return {ExperimentScale.SMOKE: 0.1, ExperimentScale.SMALL: 0.4, ExperimentScale.FULL: 1.0}[
            self
        ]

    def scaled_jobs(self, full_count: int, minimum: int = 10) -> int:
        """Number of jobs to simulate at this scale."""
        return max(minimum, int(round(full_count * self.job_multiplier)))


@dataclass(frozen=True)
class ExperimentRow:
    """One row of an experiment table."""

    label: str
    values: Mapping[str, float]

    def value(self, column: str) -> float:
        """Fetch one column's value."""
        return self.values[column]


@dataclass
class ExperimentTable:
    """A titled table of experiment results."""

    experiment_id: str
    title: str
    columns: Sequence[str]
    rows: List[ExperimentRow] = field(default_factory=list)
    notes: str = ""

    def add_row(self, label: str, values: Mapping[str, float]) -> None:
        """Append a row, validating that all columns are present."""
        missing = [column for column in self.columns if column not in values]
        if missing:
            raise ValueError(f"row {label!r} is missing columns: {missing}")
        self.rows.append(ExperimentRow(label=label, values=dict(values)))

    def row(self, label: str) -> ExperimentRow:
        """Look up a row by its label."""
        for row in self.rows:
            if row.label == label:
                return row
        raise KeyError(f"no row labelled {label!r} in {self.experiment_id}")

    def column(self, column: str) -> Dict[str, float]:
        """All values of one column, keyed by row label."""
        return {row.label: row.values[column] for row in self.rows}

    def to_text(self, float_format: str = "{:.4g}") -> str:
        """Render the table as aligned plain text."""
        header = ["row"] + list(self.columns)
        body = []
        for row in self.rows:
            rendered = [row.label]
            for column in self.columns:
                value = row.values[column]
                if isinstance(value, float):
                    rendered.append("-inf" if value == -math.inf else float_format.format(value))
                else:
                    rendered.append(str(value))
            body.append(rendered)
        widths = [
            max(len(header[i]), *(len(line[i]) for line in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [f"== {self.experiment_id}: {self.title} =="]
        lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
        lines.append("  ".join("-" * widths[i] for i in range(len(header))))
        for line in body:
            lines.append("  ".join(line[i].ljust(widths[i]) for i in range(len(header))))
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Simulation helpers shared by the experiments
# ----------------------------------------------------------------------
def require_complete(sweep) -> "object":
    """Re-raise interruption for callers that need every scenario.

    ``run_specs`` turns Ctrl-C into a *partial* :class:`SweepResult`
    (finished work is worth returning to an interactive sweep), but the
    experiment harnesses zip results against their scenario lists — a
    silently-truncated sweep would mislabel rows.  So a partial result
    here propagates as the :class:`KeyboardInterrupt` it came from.
    """
    if getattr(sweep, "partial", False):
        raise KeyboardInterrupt("experiment sweep interrupted before completion")
    return sweep


def explicit_workload(jobs: Sequence[JobSpec]) -> WorkloadSpec:
    """Wrap concrete job specs as a serializable ``explicit`` workload."""
    return WorkloadSpec("explicit", {"jobs": [job_spec_to_dict(job) for job in jobs]})


def suite_specs(
    jobs: Sequence[JobSpec],
    strategy_names: Iterable[StrategyName],
    params: StrategyParameters,
    cluster: Optional[ClusterConfig] = None,
    hadoop: Optional[HadoopConfig] = None,
    seed: int = 0,
    per_strategy_params: Optional[Mapping[StrategyName, StrategyParameters]] = None,
) -> List[ScenarioSpec]:
    """Declarative scenario specs for simulating ``jobs`` under each strategy."""
    workload = explicit_workload(jobs)
    cluster = cluster if cluster is not None else ClusterConfig()
    hadoop = hadoop if hadoop is not None else HadoopConfig()
    specs: List[ScenarioSpec] = []
    for name in strategy_names:
        strategy_params = params
        if per_strategy_params and name in per_strategy_params:
            strategy_params = per_strategy_params[name]
        specs.append(
            ScenarioSpec(
                workload=workload,
                strategy=name.value,
                strategy_params=strategy_params,
                cluster=cluster,
                hadoop=hadoop,
                seed=seed,
            )
        )
    return specs


def run_strategy_suite(
    jobs: Sequence[JobSpec],
    strategy_names: Iterable[StrategyName],
    params: StrategyParameters,
    cluster: Optional[ClusterConfig] = None,
    hadoop: Optional[HadoopConfig] = None,
    seed: int = 0,
    per_strategy_params: Optional[Mapping[StrategyName, StrategyParameters]] = None,
    parallel_jobs: int = 1,
    executor: Optional[str] = None,
) -> Dict[StrategyName, SimulationReport]:
    """Simulate the same jobs under several strategies via the façade.

    ``per_strategy_params`` overrides the common parameters for individual
    strategies (Tables I/II give Clone a different ``tau_est`` than the
    speculative strategies).  ``parallel_jobs > 1`` fans the per-strategy
    simulations out over a process pool (each strategy's run is
    independent: fresh engine, same seed).  ``executor`` picks the sweep
    backend explicitly (``"inline"``/``"pool"``/``"distributed"``); when
    ``None``, the process-wide default set by
    :func:`repro.api.set_default_executor` applies — which is how
    ``chronos-experiments --executor distributed`` reroutes every harness
    without changing any of them.
    """
    names = list(strategy_names)
    specs = suite_specs(
        jobs,
        names,
        params,
        cluster=cluster,
        hadoop=hadoop,
        seed=seed,
        per_strategy_params=per_strategy_params,
    )
    sweep = require_complete(run_specs(specs, jobs=parallel_jobs, executor=executor))
    return {name: result.report for name, result in zip(names, sweep.results)}


def utility_of(
    report: SimulationReport, r_min_pocd: float, theta: float
) -> float:
    """Net utility of a simulation report (paper's evaluation metric)."""
    return report.net_utility(r_min_pocd=r_min_pocd, theta=theta)


def reference_pocd(reports: Mapping[StrategyName, SimulationReport]) -> float:
    """The ``Rmin`` used in the testbed evaluation: Hadoop-NS's PoCD."""
    baseline = reports.get(StrategyName.HADOOP_NO_SPECULATION)
    if baseline is None:
        return 0.0
    # Rmin must stay strictly below any achievable PoCD for the logarithmic
    # utility to be finite; subtract a small margin exactly like an SLA
    # floor slightly below the baseline.
    return max(0.0, baseline.pocd - 1e-6)
