"""Experiment harness: one module per table/figure of the paper.

Each experiment module exposes a ``run_*`` function that returns a
structured :class:`~repro.experiments.common.ExperimentTable` and accepts
a ``scale`` knob so the same code can run at laptop scale (used by the
benchmark suite) or at a scale closer to the paper's.

| Paper artifact | Function |
| -------------- | -------- |
| Figure 2(a-c)  | :func:`repro.experiments.figure2.run_figure2` |
| Table I        | :func:`repro.experiments.table1.run_table1` |
| Table II       | :func:`repro.experiments.table2.run_table2` |
| Figure 3(a-c)  | :func:`repro.experiments.figure3.run_figure3` |
| Figure 4(a-c)  | :func:`repro.experiments.figure4.run_figure4` |
| Figure 5       | :func:`repro.experiments.figure5.run_figure5` |

The :mod:`repro.experiments.cli` module provides the
``chronos-experiments`` console entry point that runs any subset of the
experiments and prints the tables.
"""

from repro.experiments.common import ExperimentRow, ExperimentScale, ExperimentTable
from repro.experiments.figure2 import run_figure2
from repro.experiments.figure3 import run_figure3
from repro.experiments.figure4 import run_figure4
from repro.experiments.figure5 import run_figure5
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2

__all__ = [
    "ExperimentTable",
    "ExperimentRow",
    "ExperimentScale",
    "run_figure2",
    "run_table1",
    "run_table2",
    "run_figure3",
    "run_figure4",
    "run_figure5",
]
