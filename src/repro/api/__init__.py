"""Declarative scenario API: specs, registries, façade and sweeps.

This package is the public entry point for running simulations.  Instead
of hand-wiring a runner, a strategy factory and an estimator, callers
describe *what* to run as a serializable :class:`ScenarioSpec` and let
:func:`run` (one scenario) or :class:`Sweep` (a grid of scenarios, with
process-pool parallelism and fingerprint-keyed caching) execute it::

    from repro.api import ScenarioSpec, Sweep, WorkloadSpec, run

    spec = ScenarioSpec(
        workload=WorkloadSpec("benchmark", {"name": "sort", "num_jobs": 50}),
        strategy="s-resume",
        strategy_params={"tau_est": 40.0, "tau_kill": 80.0, "theta": 1e-4},
    )
    result = run(spec)
    print(result.report.pocd, result.fingerprint)

    sweep = Sweep.grid(spec, {"strategy": ["clone", "s-restart", "s-resume"],
                              "seed": [0, 1, 2]})
    print(sweep.run(jobs=4).to_text())

Specs round-trip through JSON (``ScenarioSpec.from_dict(spec.to_dict())
== spec``) and hash stably (:meth:`ScenarioSpec.fingerprint`), so results
can be cached, compared and shipped across processes.  Strategies,
completion-time estimators and workload generators are resolved through
string-keyed plugin registries — see :func:`register_strategy`,
:func:`register_estimator` and :func:`register_workload` for extending
the system without editing ``repro``.

Execution is event driven: :meth:`Sweep.stream` / :func:`stream_specs`
yield :mod:`repro.api.events` objects as scenarios complete (the
blocking calls above are thin consumers of the same stream), a
:class:`CancelToken` turns Ctrl-C into a *partial* result instead of
lost work, and :func:`register_stop_condition` plugs in early-stopping
predicates (``stop="max_failures"``, ``stop="first_deadline_miss"``,
or any callable over the incoming events)::

    for event in sweep.stream(jobs=4):
        if isinstance(event, ScenarioCompleted):
            print(event.index, event.result.report.pocd)

Beyond grids, :mod:`repro.adaptive` searches the scenario space with
ask/tell algorithms — :class:`Search` / :func:`run_search` /
:func:`stream_search` (plus :func:`register_algorithm` and
:func:`register_objective`) are re-exported here and speak the same
event stream, executors and control surface as sweeps.
"""

from repro.api.events import (
    EVENT_TYPES,
    JobArrived,
    JobFinished,
    JobStarted,
    ScenarioCacheHit,
    ScenarioCompleted,
    ScenarioFailed,
    ScenarioQueued,
    ScenarioRetried,
    ScenarioStarted,
    SearchFinished,
    SweepEvent,
    SweepFinished,
    SweepStarted,
    TrialProposed,
    TrialPruned,
    event_from_dict,
)
from repro.api.facade import (
    RunnerTemplate,
    ScenarioResult,
    clear_template_cache,
    execute,
    report_from_dict,
    report_to_dict,
    result_from_dict,
    run,
    spec_from_dict,
)
from repro.api.registry import (
    ESTIMATORS,
    STRATEGIES,
    WORKLOADS,
    Registry,
    UnknownPluginError,
    available_estimators,
    available_strategies,
    available_workloads,
    create_strategy,
    register_estimator,
    register_strategy,
    register_workload,
)
from repro.api.spec import (
    ScenarioSpec,
    SpecValidationError,
    WorkloadSpec,
    canonical_json,
    job_spec_from_dict,
    job_spec_to_dict,
)
from repro.api.sweep import (
    EXECUTORS,
    STOP_CONDITIONS,
    CancelToken,
    ResultCache,
    StopCondition,
    Sweep,
    SweepResult,
    available_stop_conditions,
    default_executor,
    default_on_event,
    make_stop_condition,
    register_stop_condition,
    run_specs,
    set_default_executor,
    set_default_on_event,
    stream_specs,
)

__all__ = [
    # specs
    "ScenarioSpec",
    "WorkloadSpec",
    "SpecValidationError",
    "canonical_json",
    "job_spec_to_dict",
    "job_spec_from_dict",
    # façade
    "run",
    "RunnerTemplate",
    "clear_template_cache",
    "ScenarioResult",
    "report_to_dict",
    "report_from_dict",
    # polymorphic dispatch (scenario + cluster payloads)
    "execute",
    "spec_from_dict",
    "result_from_dict",
    # sweeps
    "Sweep",
    "SweepResult",
    "ResultCache",
    "run_specs",
    "stream_specs",
    "EXECUTORS",
    "set_default_executor",
    "default_executor",
    "set_default_on_event",
    "default_on_event",
    # streaming control
    "CancelToken",
    "StopCondition",
    "STOP_CONDITIONS",
    "register_stop_condition",
    "make_stop_condition",
    "available_stop_conditions",
    # events
    "SweepEvent",
    "SweepStarted",
    "ScenarioQueued",
    "ScenarioStarted",
    "ScenarioCacheHit",
    "ScenarioCompleted",
    "ScenarioFailed",
    "ScenarioRetried",
    "SweepFinished",
    "TrialProposed",
    "TrialPruned",
    "SearchFinished",
    "JobArrived",
    "JobStarted",
    "JobFinished",
    "EVENT_TYPES",
    "event_from_dict",
    # registries
    "Registry",
    "UnknownPluginError",
    "STRATEGIES",
    "ESTIMATORS",
    "WORKLOADS",
    "register_strategy",
    "register_estimator",
    "register_workload",
    "available_strategies",
    "available_estimators",
    "available_workloads",
    "create_strategy",
    # adaptive search (lazy — see __getattr__ below)
    "Search",
    "SearchResult",
    "run_search",
    "stream_search",
    "AlgorithmAdapter",
    "Proposal",
    "TrialLedger",
    "TrialRecord",
    "register_algorithm",
    "available_algorithms",
    "make_algorithm",
    "Objective",
    "register_objective",
    "available_objectives",
    # multi-job clusters (lazy — see __getattr__ below)
    "ClusterSpec",
    "ArrivalSpec",
    "ClusterResult",
    "ClusterReport",
    "run_cluster",
    "ARRIVALS",
    "SCHEDULERS",
    "register_arrival",
    "register_cluster_scheduler",
    "available_arrivals",
    "available_cluster_schedulers",
]

# repro.adaptive builds on the sweep layer, so importing it eagerly here
# would recurse back into this module while it is still initialising.
# PEP 562 lazy attributes keep ``from repro.api import Search`` working
# without paying for (or racing) the adaptive import on plain sweeps.
_ADAPTIVE_NAMES = frozenset(
    {
        "Search",
        "SearchResult",
        "run_search",
        "stream_search",
        "AlgorithmAdapter",
        "Proposal",
        "TrialLedger",
        "TrialRecord",
        "register_algorithm",
        "available_algorithms",
        "make_algorithm",
        "Objective",
        "register_objective",
        "available_objectives",
    }
)


# repro.cluster likewise builds on this package (specs, registries,
# façade), so its re-exports use the same lazy-attribute pattern.
_CLUSTER_NAMES = frozenset(
    {
        "ClusterSpec",
        "ArrivalSpec",
        "ClusterResult",
        "ClusterReport",
        "run_cluster",
        "ARRIVALS",
        "SCHEDULERS",
        "register_arrival",
        "register_cluster_scheduler",
        "available_arrivals",
        "available_cluster_schedulers",
    }
)


def __getattr__(name):
    """Resolve the lazily re-exported adaptive/cluster names (PEP 562)."""
    if name in _ADAPTIVE_NAMES:
        import repro.adaptive as _adaptive

        value = getattr(_adaptive, name)
        globals()[name] = value
        return value
    if name in _CLUSTER_NAMES:
        import repro.cluster as _cluster

        value = getattr(_cluster, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    """Advertise the lazy re-exports alongside the eager module globals."""
    return sorted(set(globals()) | _ADAPTIVE_NAMES | _CLUSTER_NAMES)
