"""Declarative scenario API: specs, registries, façade and sweeps.

This package is the public entry point for running simulations.  Instead
of hand-wiring a runner, a strategy factory and an estimator, callers
describe *what* to run as a serializable :class:`ScenarioSpec` and let
:func:`run` (one scenario) or :class:`Sweep` (a grid of scenarios, with
process-pool parallelism and fingerprint-keyed caching) execute it::

    from repro.api import ScenarioSpec, Sweep, WorkloadSpec, run

    spec = ScenarioSpec(
        workload=WorkloadSpec("benchmark", {"name": "sort", "num_jobs": 50}),
        strategy="s-resume",
        strategy_params={"tau_est": 40.0, "tau_kill": 80.0, "theta": 1e-4},
    )
    result = run(spec)
    print(result.report.pocd, result.fingerprint)

    sweep = Sweep.grid(spec, {"strategy": ["clone", "s-restart", "s-resume"],
                              "seed": [0, 1, 2]})
    print(sweep.run(jobs=4).to_text())

Specs round-trip through JSON (``ScenarioSpec.from_dict(spec.to_dict())
== spec``) and hash stably (:meth:`ScenarioSpec.fingerprint`), so results
can be cached, compared and shipped across processes.  Strategies,
completion-time estimators and workload generators are resolved through
string-keyed plugin registries — see :func:`register_strategy`,
:func:`register_estimator` and :func:`register_workload` for extending
the system without editing ``repro``.
"""

from repro.api.facade import ScenarioResult, report_from_dict, report_to_dict, run
from repro.api.registry import (
    ESTIMATORS,
    STRATEGIES,
    WORKLOADS,
    Registry,
    UnknownPluginError,
    available_estimators,
    available_strategies,
    available_workloads,
    create_strategy,
    register_estimator,
    register_strategy,
    register_workload,
)
from repro.api.spec import (
    ScenarioSpec,
    SpecValidationError,
    WorkloadSpec,
    canonical_json,
    job_spec_from_dict,
    job_spec_to_dict,
)
from repro.api.sweep import (
    EXECUTORS,
    ResultCache,
    Sweep,
    SweepResult,
    default_executor,
    run_specs,
    set_default_executor,
)

__all__ = [
    # specs
    "ScenarioSpec",
    "WorkloadSpec",
    "SpecValidationError",
    "canonical_json",
    "job_spec_to_dict",
    "job_spec_from_dict",
    # façade
    "run",
    "ScenarioResult",
    "report_to_dict",
    "report_from_dict",
    # sweeps
    "Sweep",
    "SweepResult",
    "ResultCache",
    "run_specs",
    "EXECUTORS",
    "set_default_executor",
    "default_executor",
    # registries
    "Registry",
    "UnknownPluginError",
    "STRATEGIES",
    "ESTIMATORS",
    "WORKLOADS",
    "register_strategy",
    "register_estimator",
    "register_workload",
    "available_strategies",
    "available_estimators",
    "available_workloads",
    "create_strategy",
]
