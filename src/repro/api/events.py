"""The sweep event stream: what happens, as it happens.

Every executor backend — inline, process pool, distributed queue, remote
HTTP service — reports progress through one vocabulary: a small hierarchy
of frozen, JSON-serializable :class:`SweepEvent` dataclasses.  The
streaming API (:func:`repro.api.stream_specs` / ``Sweep.stream``) yields
these events as scenarios complete; the blocking API (``run_specs`` /
``Sweep.run``) is a thin consumer that assembles the same events into a
:class:`~repro.api.sweep.SweepResult`.

Event lifecycle of one sweep::

    SweepStarted
      ScenarioCacheHit*      (answered by the cache/result store)
      ScenarioQueued*        (one per uncached scenario index)
        ScenarioStarted      (execution began; distributed: a worker claimed it)
        ScenarioRetried      (lease expired / worker died / inline retry)
        ScenarioCompleted    (carries the ScenarioResult)
        ScenarioFailed       (the scenario itself raised)
    SweepFinished            (totals; cancelled/stopped flags)

An adaptive search (:mod:`repro.adaptive`) speaks the same vocabulary:
its driver forwards the scenario lifecycle events of each executed batch
and adds three members of its own — ``TrialProposed`` (the algorithm
asked for a configuration), ``TrialPruned`` (the algorithm ruled one out
without paying for it) and a final ``SearchFinished`` — so progress
rendering, stop conditions and Ctrl-C partial-result semantics work for
searches exactly as they do for grids.

Events serialize to JSON (:meth:`SweepEvent.to_dict` /
:func:`event_from_dict`), so they can cross process and host boundaries
exactly like specs and results do — the distributed broker keeps a
monotonic event log in sqlite, and the HTTP service relays it via the
``events_since`` RPC.  ``index`` is the scenario's position in the
submitted spec list (duplicates share the first position); ``elapsed_s``
is wall time since the sweep began.

Every event also carries an optional ``sweep_id`` — the correlation id
:func:`repro.telemetry.new_sweep_id` mints once per sweep and
``stream_specs`` stamps onto the stream (and into the broker's
``queued`` rows), so one sweep's events are joinable across hosts; see
``chronos-experiments trace``.  Pre-telemetry payloads without the field
still deserialize (it defaults to ``None``).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict, Mapping, Optional, Tuple, Type

from repro.api.facade import ScenarioResult, result_from_dict


@dataclass(frozen=True)
class SweepEvent:
    """Base class of every sweep event (no fields of its own)."""

    #: Wire name of the event, set by each subclass.
    kind: ClassVar[str] = "event"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation; inverse of :func:`event_from_dict`."""
        data: Dict[str, Any] = {"event": self.kind}
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if field.name in _RESULT_FIELDS and value is not None:
                # ScenarioResult or ClusterResult — both serialize the
                # same way and round-trip via result_from_dict.
                value = value.to_dict()
            data[field.name] = value
        return data


@dataclass(frozen=True)
class SweepStarted(SweepEvent):
    """The sweep began: how many scenarios, on which executor backend."""

    kind: ClassVar[str] = "sweep-started"

    total: int = 0
    executor: str = "inline"
    elapsed_s: float = 0.0
    sweep_id: Optional[str] = None


@dataclass(frozen=True)
class ScenarioQueued(SweepEvent):
    """One uncached scenario entered the work queue."""

    kind: ClassVar[str] = "scenario-queued"

    fingerprint: str = ""
    index: int = 0
    elapsed_s: float = 0.0
    sweep_id: Optional[str] = None


@dataclass(frozen=True)
class ScenarioStarted(SweepEvent):
    """Execution of a scenario began (distributed: a worker claimed it).

    The pool backend does not emit this event — a process pool cannot
    observe when a queued task actually begins, and a fake start stamp
    would corrupt any latency derived from the stream; use the completed
    result's own ``wall_time_s`` for per-scenario timing there.
    """

    kind: ClassVar[str] = "scenario-started"

    fingerprint: str = ""
    index: int = 0
    worker_id: Optional[str] = None
    elapsed_s: float = 0.0
    sweep_id: Optional[str] = None


@dataclass(frozen=True)
class ScenarioCacheHit(SweepEvent):
    """A scenario was answered by the cache or result store, not executed."""

    kind: ClassVar[str] = "scenario-cache-hit"

    fingerprint: str = ""
    index: int = 0
    result: Optional[ScenarioResult] = None
    elapsed_s: float = 0.0
    sweep_id: Optional[str] = None


@dataclass(frozen=True)
class ScenarioCompleted(SweepEvent):
    """A scenario finished executing; carries its result."""

    kind: ClassVar[str] = "scenario-completed"

    fingerprint: str = ""
    index: int = 0
    result: Optional[ScenarioResult] = None
    worker_id: Optional[str] = None
    elapsed_s: float = 0.0
    sweep_id: Optional[str] = None


@dataclass(frozen=True)
class ScenarioFailed(SweepEvent):
    """A scenario raised; ``error`` is the recorded diagnostic."""

    kind: ClassVar[str] = "scenario-failed"

    fingerprint: str = ""
    index: int = 0
    error: str = ""
    elapsed_s: float = 0.0
    sweep_id: Optional[str] = None


@dataclass(frozen=True)
class ScenarioRetried(SweepEvent):
    """A scenario is being re-run: lease expiry, worker death, stall drains
    and parent-inline retries all surface here instead of happening silently."""

    kind: ClassVar[str] = "scenario-retried"

    fingerprint: str = ""
    index: int = 0
    reason: str = ""
    worker_id: Optional[str] = None
    elapsed_s: float = 0.0
    sweep_id: Optional[str] = None


@dataclass(frozen=True)
class SweepFinished(SweepEvent):
    """The sweep ended (normally, cancelled, or stopped early)."""

    kind: ClassVar[str] = "sweep-finished"

    total: int = 0
    executed: int = 0
    cache_hits: int = 0
    failures: int = 0
    cancelled: bool = False
    stopped: bool = False
    elapsed_s: float = 0.0
    sweep_id: Optional[str] = None


@dataclass(frozen=True)
class TrialProposed(SweepEvent):
    """An adaptive-search algorithm proposed one trial configuration.

    ``params`` is the proposal's dotted-path override mapping (what
    :meth:`~repro.api.spec.ScenarioSpec.with_overrides` receives);
    ``trial_id`` is its stable content id, so resumed searches emit the
    same ids for the same configurations.
    """

    kind: ClassVar[str] = "trial-proposed"

    trial_id: str = ""
    params: Dict[str, Any] = field(default_factory=dict)
    fingerprint: str = ""
    algorithm: str = ""
    elapsed_s: float = 0.0
    sweep_id: Optional[str] = None


@dataclass(frozen=True)
class TrialPruned(SweepEvent):
    """An adaptive-search algorithm ruled a trial out without running it.

    Pruned trials are the whole point of searching instead of sweeping:
    each one is a scenario the grid would have paid for.  ``reason``
    records why (rung elimination, bisection bracket, ...).
    """

    kind: ClassVar[str] = "trial-pruned"

    trial_id: str = ""
    params: Dict[str, Any] = field(default_factory=dict)
    fingerprint: str = ""
    reason: str = ""
    algorithm: str = ""
    elapsed_s: float = 0.0
    sweep_id: Optional[str] = None


@dataclass(frozen=True)
class SearchFinished(SweepEvent):
    """An adaptive search ended (normally, cancelled, or stopped early).

    ``trials`` counts proposals resolved (completed + failed, including
    ledger replays of a resumed search); ``executed``/``cache_hits``
    partition the scenarios that backed them, exactly like
    :class:`SweepFinished` does for a grid sweep.
    """

    kind: ClassVar[str] = "search-finished"

    algorithm: str = ""
    objective: str = ""
    trials: int = 0
    executed: int = 0
    cache_hits: int = 0
    pruned: int = 0
    failures: int = 0
    best_trial_id: Optional[str] = None
    best_objective: Optional[float] = None
    cancelled: bool = False
    stopped: bool = False
    elapsed_s: float = 0.0
    sweep_id: Optional[str] = None


@dataclass(frozen=True)
class JobArrived(SweepEvent):
    """A job entered a cluster simulation's admission queue.

    Emitted by :func:`repro.cluster.run_cluster` (and the ``multijob``
    CLI) for multi-job scenarios; ``time_s`` is *simulation* time,
    ``queue_length`` the queue depth just after the arrival.
    """

    kind: ClassVar[str] = "job-arrived"

    job_id: str = ""
    workload: str = ""
    fingerprint: str = ""
    time_s: float = 0.0
    queue_length: int = 0
    elapsed_s: float = 0.0
    sweep_id: Optional[str] = None


@dataclass(frozen=True)
class JobStarted(SweepEvent):
    """A queued job was admitted and its Application Master started."""

    kind: ClassVar[str] = "job-started"

    job_id: str = ""
    workload: str = ""
    fingerprint: str = ""
    time_s: float = 0.0
    queue_wait_s: float = 0.0
    queue_length: int = 0
    elapsed_s: float = 0.0
    sweep_id: Optional[str] = None


@dataclass(frozen=True)
class JobFinished(SweepEvent):
    """A running job reached a terminal state (completed or missed)."""

    kind: ClassVar[str] = "job-finished"

    job_id: str = ""
    workload: str = ""
    fingerprint: str = ""
    state: str = ""
    met_deadline: bool = False
    time_s: float = 0.0
    sojourn_s: float = 0.0
    elapsed_s: float = 0.0
    sweep_id: Optional[str] = None


#: Every concrete event type, keyed by wire name.
EVENT_TYPES: Dict[str, Type[SweepEvent]] = {
    cls.kind: cls
    for cls in (
        SweepStarted,
        ScenarioQueued,
        ScenarioStarted,
        ScenarioCacheHit,
        ScenarioCompleted,
        ScenarioFailed,
        ScenarioRetried,
        SweepFinished,
        TrialProposed,
        TrialPruned,
        SearchFinished,
        JobArrived,
        JobStarted,
        JobFinished,
    )
}

#: Fields that deserialize into a :class:`ScenarioResult`.
_RESULT_FIELDS = ("result",)


def event_from_dict(data: Mapping[str, Any]) -> SweepEvent:
    """Rebuild an event from :meth:`SweepEvent.to_dict` output.

    Raises :class:`ValueError` on an unknown event name or a payload that
    does not match the event's fields, so a corrupt log line is an error
    at the boundary rather than a latent surprise.
    """
    if not isinstance(data, Mapping):
        raise ValueError(f"expected an event mapping, got {type(data).__name__}")
    name = data.get("event")
    cls = EVENT_TYPES.get(name)
    if cls is None:
        raise ValueError(
            f"unknown sweep event {name!r}; known: {', '.join(sorted(EVENT_TYPES))}"
        )
    allowed = {field.name for field in dataclasses.fields(cls)}
    kwargs: Dict[str, Any] = {}
    for key, value in data.items():
        if key == "event":
            continue
        if key not in allowed:
            raise ValueError(f"{name}: unknown field {key!r}")
        if key in _RESULT_FIELDS and value is not None:
            value = result_from_dict(value)
        kwargs[key] = value
    try:
        return cls(**kwargs)
    except TypeError as error:
        raise ValueError(f"{name}: {error}") from error


__all__: Tuple[str, ...] = (
    "SweepEvent",
    "SweepStarted",
    "ScenarioQueued",
    "ScenarioStarted",
    "ScenarioCacheHit",
    "ScenarioCompleted",
    "ScenarioFailed",
    "ScenarioRetried",
    "SweepFinished",
    "TrialProposed",
    "TrialPruned",
    "SearchFinished",
    "JobArrived",
    "JobStarted",
    "JobFinished",
    "EVENT_TYPES",
    "event_from_dict",
)
