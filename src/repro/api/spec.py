"""Declarative, serializable scenario specifications.

A :class:`ScenarioSpec` is the single value that fully determines one
simulation run: workload, cluster shape, Hadoop runtime knobs, strategy
(by registry name) and its parameters, completion-time estimator and the
RNG seed.  Specs are frozen, JSON-round-trippable
(``ScenarioSpec.from_dict(spec.to_dict()) == spec``) and content-hashable
(:meth:`ScenarioSpec.fingerprint` is stable across processes and
platforms), which is what makes result caching and multi-process sweeps
safe.

Validation happens at construction and every failure raises
:class:`SpecValidationError` carrying the dotted name of the offending
field (``"strategy"``, ``"workload.kind"``, ``"strategy_params.tau_est"``
...), so a bad spec loaded from JSON is diagnosable without a traceback
safari.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
from dataclasses import dataclass, field, fields as _dataclass_fields
from typing import Any, Dict, List, Mapping, Optional

from repro.api import registry as _registry
from repro.core.model import StrategyName
from repro.hadoop.config import HadoopConfig
from repro.simulator.cluster import ClusterConfig
from repro.simulator.entities import JobSpec
from repro.strategies import SpeculationStrategy, StrategyParameters


class SpecValidationError(ValueError):
    """A scenario spec failed validation; :attr:`field` names the culprit."""

    def __init__(self, field_name: str, message: str):
        self.field = field_name
        super().__init__(f"{field_name}: {message}")


# ----------------------------------------------------------------------
# Canonical JSON (the substrate of fingerprinting)
# ----------------------------------------------------------------------
def _normalize_json(obj: Any, where: str) -> Any:
    """Reduce ``obj`` to JSON-native types, rejecting anything unstable."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        if not math.isfinite(obj):
            raise SpecValidationError(where, f"non-finite float {obj!r} is not serializable")
        return obj + 0.0  # normalizes -0.0 to 0.0
    if isinstance(obj, Mapping):
        return {str(key): _normalize_json(value, f"{where}.{key}") for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_normalize_json(value, f"{where}[{index}]") for index, value in enumerate(obj)]
    raise SpecValidationError(where, f"unsupported type {type(obj).__name__} in a spec")


def canonical_json(obj: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, normalized floats."""
    return json.dumps(_normalize_json(obj, "spec"), sort_keys=True, separators=(",", ":"))


def _section_from_mapping(section: str, cls, mapping: Mapping[str, Any]):
    """Build a config dataclass from a mapping with field-level errors."""
    allowed = {f.name for f in _dataclass_fields(cls)}
    unknown = sorted(set(mapping) - allowed)
    if unknown:
        raise SpecValidationError(
            f"{section}.{unknown[0]}",
            f"unknown field (allowed: {', '.join(sorted(allowed))})",
        )
    try:
        return cls(**dict(mapping))
    except (TypeError, ValueError) as error:
        raise SpecValidationError(section, str(error)) from error


# ----------------------------------------------------------------------
# Job-spec serialization (used by the "explicit" workload kind)
# ----------------------------------------------------------------------
def job_spec_to_dict(spec: JobSpec) -> Dict[str, Any]:
    """Serialize a simulator :class:`JobSpec` to a JSON-ready dict."""
    return dataclasses.asdict(spec)


def job_spec_from_dict(data: Mapping[str, Any]) -> JobSpec:
    """Rebuild a :class:`JobSpec`, naming bad fields on failure."""
    if not isinstance(data, Mapping):
        raise SpecValidationError("workload.params.jobs", "each job must be a mapping")
    allowed = {f.name for f in _dataclass_fields(JobSpec)}
    unknown = sorted(set(data) - allowed)
    if unknown:
        raise SpecValidationError(
            f"workload.params.jobs.{unknown[0]}",
            f"unknown field (allowed: {', '.join(sorted(allowed))})",
        )
    try:
        return JobSpec(**dict(data))
    except (TypeError, ValueError) as error:
        raise SpecValidationError("workload.params.jobs", str(error)) from error


# ----------------------------------------------------------------------
# The spec types
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkloadSpec:
    """A workload by registry kind plus builder parameters.

    ``params`` is normalized to JSON-native values at construction so that
    equality and fingerprints are representation-independent (tuples
    become lists, mapping keys become strings, non-finite floats are
    rejected).
    """

    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        """Canonicalize the workload kind and normalize the params."""
        if not isinstance(self.kind, str) or not self.kind.strip():
            raise SpecValidationError("workload.kind", "must be a non-empty string")
        kind = self.kind.strip().lower()
        if kind not in _registry.WORKLOADS:
            raise SpecValidationError(
                "workload.kind",
                f"unknown workload {self.kind!r}; available: "
                f"{', '.join(_registry.available_workloads())}",
            )
        object.__setattr__(self, "kind", kind)
        if not isinstance(self.params, Mapping):
            raise SpecValidationError("workload.params", "must be a mapping")
        object.__setattr__(self, "params", _normalize_json(dict(self.params), "workload.params"))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation."""
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkloadSpec":
        """Rebuild from :meth:`to_dict` output."""
        if not isinstance(data, Mapping):
            raise SpecValidationError("workload", "expected a mapping")
        unknown = sorted(set(data) - {"kind", "params"})
        if unknown:
            raise SpecValidationError(
                f"workload.{unknown[0]}", "unknown field (allowed: kind, params)"
            )
        if "kind" not in data:
            raise SpecValidationError("workload.kind", "is required")
        return cls(kind=data["kind"], params=data.get("params", {}))


@dataclass(frozen=True)
class ScenarioSpec:
    """Everything needed to reproduce one simulation run.

    Parameters
    ----------
    workload:
        What jobs to simulate — a :class:`WorkloadSpec` (or equivalent
        mapping) resolved through the workload registry.
    strategy:
        Registry name of the speculation strategy (paper aliases such as
        ``"restart"`` are canonicalized, so equivalent names share one
        fingerprint).
    strategy_params:
        Shared strategy knobs (timing, theta, SLA floor, ...).
    cluster / hadoop:
        Cluster shape and simulated-runtime configuration.
    estimator:
        Registry name of the completion-time estimator, or ``None`` for
        the paper's default (Chronos estimator for Chronos strategies,
        the plain Hadoop one for baselines).
    seed:
        RNG seed shared by the workload builder and the simulator.
    max_events:
        Optional hard cap on simulation events (truncation safety valve).
    """

    workload: WorkloadSpec
    strategy: str
    strategy_params: StrategyParameters = field(default_factory=StrategyParameters)
    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    hadoop: HadoopConfig = field(default_factory=HadoopConfig)
    estimator: Optional[str] = None
    seed: int = 0
    max_events: Optional[int] = None

    def __post_init__(self) -> None:
        """Validate and canonicalize every section of the spec."""
        workload = self.workload
        if isinstance(workload, Mapping):
            workload = WorkloadSpec.from_dict(workload)
            object.__setattr__(self, "workload", workload)
        if not isinstance(workload, WorkloadSpec):
            raise SpecValidationError(
                "workload", f"expected WorkloadSpec or mapping, got {type(workload).__name__}"
            )

        strategy = self.strategy
        if isinstance(strategy, StrategyName):
            strategy = strategy.value
        if not isinstance(strategy, str) or not strategy.strip():
            raise SpecValidationError("strategy", "must be a non-empty string")
        try:
            canonical = _registry.resolve_strategy_name(strategy)
        except _registry.UnknownPluginError as error:
            raise SpecValidationError("strategy", str(error)) from error
        object.__setattr__(self, "strategy", canonical)

        for section, cls in (
            ("strategy_params", StrategyParameters),
            ("cluster", ClusterConfig),
            ("hadoop", HadoopConfig),
        ):
            value = getattr(self, section)
            if isinstance(value, Mapping):
                object.__setattr__(self, section, _section_from_mapping(section, cls, value))
            elif not isinstance(value, cls):
                raise SpecValidationError(
                    section, f"expected {cls.__name__} or mapping, got {type(value).__name__}"
                )

        if self.estimator is not None:
            if not isinstance(self.estimator, str) or not self.estimator.strip():
                raise SpecValidationError("estimator", "must be a non-empty string or None")
            estimator = self.estimator.strip().lower()
            if estimator not in _registry.ESTIMATORS:
                raise SpecValidationError(
                    "estimator",
                    f"unknown estimator {self.estimator!r}; available: "
                    f"{', '.join(_registry.available_estimators())}",
                )
            object.__setattr__(self, "estimator", estimator)

        if not isinstance(self.seed, int) or isinstance(self.seed, bool) or self.seed < 0:
            raise SpecValidationError("seed", "must be a non-negative integer")
        if self.max_events is not None and (
            not isinstance(self.max_events, int)
            or isinstance(self.max_events, bool)
            or self.max_events < 1
        ):
            raise SpecValidationError("max_events", "must be a positive integer or None")

    # ------------------------------------------------------------------
    # Serialization and identity
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready nested dict; inverse of :meth:`from_dict`."""
        return {
            "workload": self.workload.to_dict(),
            "strategy": self.strategy,
            "strategy_params": dataclasses.asdict(self.strategy_params),
            "cluster": dataclasses.asdict(self.cluster),
            "hadoop": dataclasses.asdict(self.hadoop),
            "estimator": self.estimator,
            "seed": self.seed,
            "max_events": self.max_events,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output (or hand-written JSON)."""
        if not isinstance(data, Mapping):
            raise SpecValidationError("spec", f"expected a mapping, got {type(data).__name__}")
        allowed = {f.name for f in _dataclass_fields(cls)}
        unknown = sorted(set(data) - allowed)
        if unknown:
            raise SpecValidationError(
                unknown[0], f"unknown field (allowed: {', '.join(sorted(allowed))})"
            )
        if "workload" not in data:
            raise SpecValidationError("workload", "is required")
        if "strategy" not in data:
            raise SpecValidationError("strategy", "is required")
        kwargs = {key: value for key, value in data.items() if key in allowed}
        return cls(**kwargs)

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        """Parse a spec from a JSON string."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise SpecValidationError("spec", f"invalid JSON: {error}") from error
        return cls.from_dict(data)

    def fingerprint(self) -> str:
        """Stable content hash (16 hex chars) of the canonical spec JSON.

        Two specs have the same fingerprint iff they describe the same
        scenario; the hash is stable across processes, platforms and
        Python versions, which makes it a safe cache key.
        """
        digest = hashlib.sha256(canonical_json(self.to_dict()).encode("utf-8"))
        return digest.hexdigest()[:16]

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def with_overrides(
        self, overrides: Optional[Mapping[str, Any]] = None, **kwargs: Any
    ) -> "ScenarioSpec":
        """A copy with dotted-path overrides applied.

        Paths address the :meth:`to_dict` structure: ``"strategy"``,
        ``"strategy_params.theta"``, ``"cluster.num_nodes"``,
        ``"workload.params.num_jobs"``...  Keyword arguments use ``__``
        in place of dots (``strategy_params__theta=1e-3``).
        """
        merged: Dict[str, Any] = dict(overrides or {})
        for key, value in kwargs.items():
            merged[key.replace("__", ".")] = value
        data = self.to_dict()
        for path, value in merged.items():
            _apply_override(data, path, value)
        return ScenarioSpec.from_dict(data)

    def build_jobs(self) -> List[JobSpec]:
        """Materialize the workload via the workload registry."""
        try:
            return _registry.build_jobs(self.workload.kind, self.workload.params, self.seed)
        except SpecValidationError:
            raise
        except ValueError as error:
            raise SpecValidationError("workload.params", str(error)) from error

    def build_strategy(self) -> SpeculationStrategy:
        """Instantiate the strategy via the strategy registry."""
        return _registry.create_strategy(self.strategy, self.strategy_params)


def _apply_override(data: Dict[str, Any], path: str, value: Any) -> None:
    """Set a dotted path inside a nested spec dict."""
    if not path:
        raise SpecValidationError("override", "empty override path")
    parts = path.split(".")
    node = data
    for depth, part in enumerate(parts[:-1]):
        if not isinstance(node, dict):
            raise SpecValidationError(
                ".".join(parts[: depth + 1]), "override path does not address a mapping"
            )
        if part not in node:
            # Workload builder params are open-ended; config sections are not.
            node[part] = {}
        node = node[part]
    if not isinstance(node, dict):
        raise SpecValidationError(path, "override path does not address a mapping")
    node[parts[-1]] = value
