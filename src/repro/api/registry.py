"""String-keyed plugin registries for strategies, estimators and workloads.

The declarative API (:mod:`repro.api.spec`) refers to strategies,
completion-time estimators and workload generators *by name* so that a
:class:`~repro.api.spec.ScenarioSpec` can be serialized, hashed and
shipped to worker processes.  The registries in this module resolve those
names; third-party code extends the system by registering new plugins —
no edits to ``repro`` required::

    from repro.api import register_strategy, register_workload

    @register_strategy("my-strategy")
    def build_my_strategy(params):
        return MyStrategy(params)

    @register_workload("replay")
    def replay_workload(path, *, seed=0):
        return load_job_specs(path)

Every registry lookup failure raises :class:`UnknownPluginError`, which
lists the registered names so typos are self-diagnosing.

Builtins registered at import time:

* strategies — the six paper strategies under their canonical
  :class:`~repro.core.model.StrategyName` values (``clone``,
  ``s-restart``, ``s-resume``, ``hadoop-ns``, ``hadoop-s``, ``mantri``),
* estimators — ``chronos`` (JVM-aware, paper eq. 30) and ``hadoop``
  (the default progress/elapsed estimator),
* workloads — ``benchmark`` (one testbed benchmark), ``mixed`` (all four
  interleaved), ``google-trace`` (the synthetic Google-trace generator)
  and ``explicit`` (a literal list of job-spec dictionaries).
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Dict, Generic, Iterable, List, Mapping, Optional, TypeVar

import numpy as np

from repro.core.model import StrategyName
from repro.simulator.entities import JobSpec
from repro.simulator.progress import (
    CompletionTimeEstimator,
    chronos_estimate_completion,
    hadoop_estimate_completion,
)
from repro.strategies import SpeculationStrategy, StrategyParameters, build_strategy
from repro.traces.google_trace import GoogleTraceConfig, SyntheticGoogleTrace
from repro.traces.spot_price import SpotPriceConfig, SpotPriceHistory
from repro.traces.workloads import benchmark_jobs, mixed_benchmark_jobs

T = TypeVar("T")

#: A strategy factory maps shared parameters to a ready strategy instance.
StrategyFactory = Callable[[StrategyParameters], SpeculationStrategy]
#: A workload builder maps keyword parameters (plus ``seed``) to job specs.
WorkloadBuilder = Callable[..., List[JobSpec]]


class UnknownPluginError(KeyError):
    """A name was looked up that no plugin is registered under."""

    def __init__(self, kind: str, name: str, available: Iterable[str]):
        names = ", ".join(sorted(available)) or "<none registered>"
        self.kind = kind
        self.name = name
        self.message = f"unknown {kind} {name!r}; available: {names}"
        super().__init__(self.message)

    def __str__(self) -> str:
        """The plain message (KeyError would repr() it, adding stray quotes)."""
        return self.message


# Monotonic counter bumped on every (un)registration across all
# registries.  Caches that memoize resolved plugins (e.g. the façade's
# RunnerTemplate cache) key on this so re-registering a name under a
# different implementation invalidates them.
_epoch = 0


def registry_epoch() -> int:
    """Generation counter of the plugin registries (bumped on mutation)."""
    return _epoch


def _bump_epoch() -> None:
    global _epoch
    _epoch += 1


class Registry(Generic[T]):
    """A case-insensitive name -> plugin mapping with a decorator form."""

    def __init__(self, kind: str):
        self._kind = kind
        self._plugins: Dict[str, T] = {}

    @property
    def kind(self) -> str:
        """What this registry holds (used in error messages)."""
        return self._kind

    def register(
        self, name: str, plugin: Optional[T] = None, *, overwrite: bool = False
    ):
        """Register ``plugin`` under ``name``.

        With ``plugin`` omitted, returns a decorator::

            @REGISTRY.register("name")
            def plugin(...): ...

        Re-registering an existing name raises unless ``overwrite=True``.
        """
        key = self._normalize(name)
        if plugin is None:

            def decorator(obj: T) -> T:
                self.register(name, obj, overwrite=overwrite)
                return obj

            return decorator
        if key in self._plugins and not overwrite:
            raise ValueError(
                f"{self._kind} {name!r} is already registered; pass overwrite=True to replace it"
            )
        self._plugins[key] = plugin
        _bump_epoch()
        return plugin

    def get(self, name: str) -> T:
        """Look up a plugin, raising :class:`UnknownPluginError` if absent."""
        key = self._normalize(name)
        if key not in self._plugins:
            raise UnknownPluginError(self._kind, name, self._plugins)
        return self._plugins[key]

    def unregister(self, name: str) -> None:
        """Remove a plugin; raises :class:`UnknownPluginError` if absent."""
        key = self._normalize(name)
        if key not in self._plugins:
            raise UnknownPluginError(self._kind, name, self._plugins)
        del self._plugins[key]
        _bump_epoch()

    def names(self) -> tuple:
        """All registered names, sorted."""
        return tuple(sorted(self._plugins))

    def __contains__(self, name: object) -> bool:
        """Whether a plugin is registered under ``name`` (case-insensitive)."""
        try:
            return self._normalize(name) in self._plugins
        except (TypeError, ValueError):
            return False

    def __len__(self) -> int:
        """Number of registered plugins."""
        return len(self._plugins)

    def _normalize(self, name: object) -> str:
        if isinstance(name, StrategyName):
            name = name.value
        if not isinstance(name, str) or not name.strip():
            raise TypeError(f"{self._kind} name must be a non-empty string, got {name!r}")
        return name.strip().lower()


#: Strategy name -> factory producing a configured strategy instance.
STRATEGIES: Registry[StrategyFactory] = Registry("strategy")
#: Estimator name -> completion-time estimator callable.
ESTIMATORS: Registry[CompletionTimeEstimator] = Registry("estimator")
#: Workload kind -> builder producing a list of job specs.
WORKLOADS: Registry[WorkloadBuilder] = Registry("workload")


# ----------------------------------------------------------------------
# Module-level convenience wrappers (the documented registration API)
# ----------------------------------------------------------------------
def register_strategy(name: str, factory: Optional[StrategyFactory] = None, **kwargs):
    """Register a strategy factory; decorator form when ``factory`` is omitted."""
    return STRATEGIES.register(name, factory, **kwargs)


def register_estimator(name: str, estimator: Optional[CompletionTimeEstimator] = None, **kwargs):
    """Register a completion-time estimator; decorator form when omitted."""
    return ESTIMATORS.register(name, estimator, **kwargs)


def register_workload(name: str, builder: Optional[WorkloadBuilder] = None, **kwargs):
    """Register a workload builder; decorator form when ``builder`` is omitted."""
    return WORKLOADS.register(name, builder, **kwargs)


def available_strategies() -> tuple:
    """Names of every registered strategy."""
    return STRATEGIES.names()


def available_estimators() -> tuple:
    """Names of every registered estimator."""
    return ESTIMATORS.names()


def available_workloads() -> tuple:
    """Names of every registered workload kind."""
    return WORKLOADS.names()


def resolve_strategy_name(name: str) -> str:
    """Canonicalize a strategy name (accepting the paper's aliases).

    ``"restart"``, ``"speculative-resume"`` etc. resolve to their
    canonical registry keys so equivalent specs share one fingerprint.
    """
    if name in STRATEGIES:
        return STRATEGIES._normalize(name)
    if isinstance(name, (str, StrategyName)):
        try:
            canonical = StrategyName.parse(
                name.value if isinstance(name, StrategyName) else name
            ).value
        except ValueError:
            canonical = None
        if canonical is not None and canonical in STRATEGIES:
            return canonical
    raise UnknownPluginError("strategy", name, STRATEGIES.names())


def create_strategy(name: str, params: StrategyParameters) -> SpeculationStrategy:
    """Instantiate a registered strategy with the given shared parameters."""
    return STRATEGIES.get(resolve_strategy_name(name))(params)


def build_jobs(kind: str, params: Mapping[str, Any], seed: int) -> List[JobSpec]:
    """Materialize a workload: resolve the builder and call it.

    The builder receives the spec's ``seed`` as a keyword argument plus
    every entry of ``params``; parameter mismatches surface as a
    :class:`ValueError` naming the workload kind.
    """
    builder = WORKLOADS.get(kind)
    try:
        jobs = builder(seed=seed, **dict(params))
    except TypeError as error:
        raise ValueError(f"invalid parameters for workload {kind!r}: {error}") from error
    return list(jobs)


# ----------------------------------------------------------------------
# Builtin plugins
# ----------------------------------------------------------------------
for _name in StrategyName:
    STRATEGIES.register(_name.value, functools.partial(build_strategy, _name))

ESTIMATORS.register("chronos", chronos_estimate_completion)
ESTIMATORS.register("hadoop", hadoop_estimate_completion)


@WORKLOADS.register("benchmark")
def _benchmark_workload(
    name: str,
    num_jobs: int = 100,
    inter_arrival: float = 5.0,
    unit_price: float = 1.0,
    deadline: Optional[float] = None,
    *,
    seed: int = 0,
) -> List[JobSpec]:
    """A Poisson stream of jobs from one testbed benchmark (Figure 2)."""
    return benchmark_jobs(
        name,
        num_jobs=num_jobs,
        inter_arrival=inter_arrival,
        unit_price=unit_price,
        deadline=deadline,
        rng=np.random.default_rng(seed),
    )


@WORKLOADS.register("mixed")
def _mixed_workload(
    num_jobs_per_benchmark: int = 25,
    inter_arrival: float = 5.0,
    unit_price: float = 1.0,
    *,
    seed: int = 0,
) -> List[JobSpec]:
    """All four testbed benchmarks interleaved into one arrival stream."""
    return mixed_benchmark_jobs(
        num_jobs_per_benchmark=num_jobs_per_benchmark,
        inter_arrival=inter_arrival,
        unit_price=unit_price,
        rng=np.random.default_rng(seed),
    )


@WORKLOADS.register("google-trace")
def _google_trace_workload(
    num_jobs: int = 200,
    beta_override: Optional[float] = None,
    spot_price_mean: Optional[float] = None,
    spot_price_seed: Optional[int] = None,
    *,
    seed: int = 0,
) -> List[JobSpec]:
    """Laptop-scale synthetic Google-trace jobs (Tables I/II, Figures 3-5).

    When ``spot_price_mean`` is given, per-job unit prices come from a
    synthetic EC2 spot-price history instead of a flat 1.0.
    """
    spot = None
    if spot_price_mean is not None:
        spot_seed = spot_price_seed if spot_price_seed is not None else seed + 7
        spot = SpotPriceHistory(SpotPriceConfig(mean_price=spot_price_mean, seed=spot_seed))
    config = GoogleTraceConfig.small(num_jobs=num_jobs, seed=seed)
    return SyntheticGoogleTrace(config, spot_prices=spot).job_specs(beta_override=beta_override)


@WORKLOADS.register("explicit")
def _explicit_workload(jobs: Iterable[Mapping[str, Any]], *, seed: int = 0) -> List[JobSpec]:
    """A literal list of serialized job specs (see ``job_spec_to_dict``)."""
    from repro.api.spec import job_spec_from_dict

    del seed  # the jobs are fully specified; nothing left to sample
    return [job_spec_from_dict(job) for job in jobs]
