"""The one-call façade: ``run(spec) -> ScenarioResult``.

This is the only place in the repository that wires a
:class:`~repro.simulator.runner.SimulationRunner` together from a
declarative :class:`~repro.api.spec.ScenarioSpec`: every experiment
harness, example and sweep goes through here, so adding a strategy,
estimator or workload via the registries automatically reaches all of
them.

A :class:`ScenarioResult` pairs the simulation report with the spec that
produced it, the spec's fingerprint (the cache key) and the wall time the
run took.  Results serialize to JSON (:meth:`ScenarioResult.to_dict` /
``from_dict``) so sweeps can persist an on-disk cache and ship results
across process boundaries.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from typing import Any, Dict, Mapping

from repro import telemetry
from repro.api import registry as _registry
from repro.api.spec import ScenarioSpec, SpecValidationError
from repro.core.model import StrategyName
from repro.simulator.metrics import JobRecord, SimulationReport
from repro.simulator.runner import SimulationRunner, default_estimator_for

_SCENARIO_WALL = telemetry.histogram(
    "chronos_scenario_wall_seconds", "Wall-clock of one scenario simulation"
)


@dataclass(frozen=True)
class ScenarioResult:
    """Outcome of running one scenario spec."""

    spec: ScenarioSpec
    report: SimulationReport
    fingerprint: str
    wall_time_s: float

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (used by the on-disk result cache)."""
        return {
            "spec": self.spec.to_dict(),
            "report": report_to_dict(self.report),
            "fingerprint": self.fingerprint,
            "wall_time_s": self.wall_time_s,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioResult":
        """Rebuild a result from :meth:`to_dict` output."""
        if not isinstance(data, Mapping):
            raise SpecValidationError("result", "expected a mapping")
        missing = [key for key in ("spec", "report", "fingerprint", "wall_time_s") if key not in data]
        if missing:
            raise SpecValidationError(f"result.{missing[0]}", "is required")
        return cls(
            spec=ScenarioSpec.from_dict(data["spec"]),
            report=report_from_dict(data["report"]),
            fingerprint=str(data["fingerprint"]),
            wall_time_s=float(data["wall_time_s"]),
        )

    def summary_row(self) -> Dict[str, Any]:
        """Flat sweep-summary row (the columns of ``SweepResult.COLUMNS``)."""
        params = self.spec.strategy_params
        report = self.report
        return {
            "fingerprint": self.fingerprint,
            "workload": self.spec.workload.kind,
            "strategy": self.spec.strategy,
            "estimator": self.spec.estimator or "default",
            "seed": self.spec.seed,
            "num_jobs": report.num_jobs,
            "pocd": report.pocd,
            "mean_cost": report.mean_cost,
            "mean_machine_time": report.mean_machine_time,
            "mean_response_time": report.mean_response_time,
            "utility": report.net_utility(r_min_pocd=params.r_min_pocd, theta=params.theta),
            "wall_time_s": self.wall_time_s,
        }


def report_to_dict(report: SimulationReport) -> Dict[str, Any]:
    """Serialize a :class:`SimulationReport` to JSON-native types."""
    data = dataclasses.asdict(report)
    data["strategy"] = getattr(report.strategy, "value", str(report.strategy))
    data["r_histogram"] = {str(r): count for r, count in report.r_histogram.items()}
    data["job_records"] = [dataclasses.asdict(record) for record in report.job_records]
    return data


def report_from_dict(data: Mapping[str, Any]) -> SimulationReport:
    """Rebuild a :class:`SimulationReport` from :func:`report_to_dict` output."""
    payload = dict(data)
    try:
        payload["strategy"] = StrategyName(payload["strategy"])
    except (KeyError, ValueError):
        pass  # custom plugin strategies keep their raw string name
    payload["r_histogram"] = {
        int(r): int(count) for r, count in dict(payload.get("r_histogram", {})).items()
    }
    payload["job_records"] = tuple(
        JobRecord(**dict(record)) for record in payload.get("job_records", ())
    )
    try:
        return SimulationReport(**payload)
    except TypeError as error:
        raise SpecValidationError("result.report", str(error)) from error


def run(spec: ScenarioSpec) -> ScenarioResult:
    """Execute one scenario end to end and return its result.

    Resolves the workload, strategy and estimator through the plugin
    registries, builds a fresh :class:`SimulationRunner` (no state shared
    between runs) and times the simulation.
    """
    if not isinstance(spec, ScenarioSpec):
        raise SpecValidationError("spec", f"expected ScenarioSpec, got {type(spec).__name__}")
    jobs = spec.build_jobs()
    strategy = spec.build_strategy()
    if spec.estimator is not None:
        estimator = _registry.ESTIMATORS.get(spec.estimator)
    else:
        estimator = default_estimator_for(strategy.name)
    runner = SimulationRunner(
        cluster=spec.cluster,
        hadoop=spec.hadoop,
        seed=spec.seed,
        max_events=spec.max_events,
        profiler=telemetry.active_profiler(),
    )
    started = time.perf_counter()
    report = runner.run(jobs, strategy, estimator=estimator)
    wall_time = time.perf_counter() - started
    _SCENARIO_WALL.observe(wall_time)
    return ScenarioResult(
        spec=spec,
        report=report,
        fingerprint=spec.fingerprint(),
        wall_time_s=wall_time,
    )


# ----------------------------------------------------------------------
# Polymorphic spec/result dispatch
# ----------------------------------------------------------------------
# Cluster payloads carry a "kind": "cluster" discriminator (which plain
# ScenarioSpec.from_dict would reject as an unknown field, so the two
# payload spaces cannot be confused).  The cluster package imports
# repro.api, hence the lazy imports here.
_CLUSTER_KIND = "cluster"


def _is_cluster_payload(data: Any) -> bool:
    return isinstance(data, Mapping) and data.get("kind") == _CLUSTER_KIND


def spec_from_dict(data: Mapping[str, Any]):
    """Rebuild a :class:`ScenarioSpec` *or* ``ClusterSpec`` from JSON.

    Dispatches on the ``"kind"`` discriminator: payloads tagged
    ``"cluster"`` resolve through :mod:`repro.cluster`, everything else
    through :meth:`ScenarioSpec.from_dict`.
    """
    if _is_cluster_payload(data):
        from repro.cluster import ClusterSpec

        return ClusterSpec.from_dict(data)
    return ScenarioSpec.from_dict(data)


def result_from_dict(data: Mapping[str, Any]):
    """Rebuild a :class:`ScenarioResult` *or* ``ClusterResult`` from JSON."""
    if isinstance(data, Mapping) and _is_cluster_payload(data.get("spec")):
        from repro.cluster import ClusterResult

        return ClusterResult.from_dict(data)
    return ScenarioResult.from_dict(data)


def execute(spec):
    """Run any spec: :func:`run` for scenarios, ``run_cluster`` for clusters."""
    if getattr(spec, "kind", None) == _CLUSTER_KIND:
        from repro.cluster import run_cluster

        return run_cluster(spec)
    return run(spec)
