"""The one-call façade: ``run(spec) -> ScenarioResult``.

This is the only place in the repository that wires a
:class:`~repro.simulator.runner.SimulationRunner` together from a
declarative :class:`~repro.api.spec.ScenarioSpec`: every experiment
harness, example and sweep goes through here, so adding a strategy,
estimator or workload via the registries automatically reaches all of
them.

A :class:`ScenarioResult` pairs the simulation report with the spec that
produced it, the spec's fingerprint (the cache key) and the wall time the
run took.  Results serialize to JSON (:meth:`ScenarioResult.to_dict` /
``from_dict``) so sweeps can persist an on-disk cache and ship results
across process boundaries.
"""

from __future__ import annotations

import dataclasses
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro import telemetry
from repro.api import registry as _registry
from repro.api.spec import ScenarioSpec, SpecValidationError, canonical_json
from repro.core.model import StrategyName
from repro.simulator.entities import JobSpec
from repro.simulator.metrics import JobRecord, SimulationReport
from repro.simulator.runner import SimulationRunner, default_estimator_for

_SCENARIO_WALL = telemetry.histogram(
    "chronos_scenario_wall_seconds", "Wall-clock of one scenario simulation"
)


@dataclass(frozen=True)
class ScenarioResult:
    """Outcome of running one scenario spec."""

    spec: ScenarioSpec
    report: SimulationReport
    fingerprint: str
    wall_time_s: float

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (used by the on-disk result cache)."""
        return {
            "spec": self.spec.to_dict(),
            "report": report_to_dict(self.report),
            "fingerprint": self.fingerprint,
            "wall_time_s": self.wall_time_s,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioResult":
        """Rebuild a result from :meth:`to_dict` output."""
        if not isinstance(data, Mapping):
            raise SpecValidationError("result", "expected a mapping")
        missing = [key for key in ("spec", "report", "fingerprint", "wall_time_s") if key not in data]
        if missing:
            raise SpecValidationError(f"result.{missing[0]}", "is required")
        return cls(
            spec=ScenarioSpec.from_dict(data["spec"]),
            report=report_from_dict(data["report"]),
            fingerprint=str(data["fingerprint"]),
            wall_time_s=float(data["wall_time_s"]),
        )

    def summary_row(self) -> Dict[str, Any]:
        """Flat sweep-summary row (the columns of ``SweepResult.COLUMNS``)."""
        params = self.spec.strategy_params
        report = self.report
        return {
            "fingerprint": self.fingerprint,
            "workload": self.spec.workload.kind,
            "strategy": self.spec.strategy,
            "estimator": self.spec.estimator or "default",
            "seed": self.spec.seed,
            "num_jobs": report.num_jobs,
            "pocd": report.pocd,
            "mean_cost": report.mean_cost,
            "mean_machine_time": report.mean_machine_time,
            "mean_response_time": report.mean_response_time,
            "utility": report.net_utility(r_min_pocd=params.r_min_pocd, theta=params.theta),
            "wall_time_s": self.wall_time_s,
        }


def report_to_dict(report: SimulationReport) -> Dict[str, Any]:
    """Serialize a :class:`SimulationReport` to JSON-native types."""
    data = dataclasses.asdict(report)
    data["strategy"] = getattr(report.strategy, "value", str(report.strategy))
    data["r_histogram"] = {str(r): count for r, count in report.r_histogram.items()}
    data["job_records"] = [dataclasses.asdict(record) for record in report.job_records]
    return data


def report_from_dict(data: Mapping[str, Any]) -> SimulationReport:
    """Rebuild a :class:`SimulationReport` from :func:`report_to_dict` output."""
    payload = dict(data)
    try:
        payload["strategy"] = StrategyName(payload["strategy"])
    except (KeyError, ValueError):
        pass  # custom plugin strategies keep their raw string name
    payload["r_histogram"] = {
        int(r): int(count) for r, count in dict(payload.get("r_histogram", {})).items()
    }
    payload["job_records"] = tuple(
        JobRecord(**dict(record)) for record in payload.get("job_records", ())
    )
    try:
        return SimulationReport(**payload)
    except TypeError as error:
        raise SpecValidationError("result.report", str(error)) from error


class RunnerTemplate:
    """Seed-independent scaffolding for one *family* of scenario specs.

    A spec family is everything a :class:`ScenarioSpec` says except its
    ``seed``: replica runs of the same scenario share the workload
    definition, the strategy instance and the resolved estimator, and
    only the RNG stream differs.  A template performs that shared
    resolution once — strategy construction, estimator lookup — and then
    executes any number of per-seed runs against fresh
    :class:`SimulationRunner` instances, so results are byte-identical
    to building everything from scratch per call (strategies are
    stateless and :class:`~repro.simulator.entities.JobSpec` lists are
    deterministic functions of ``(workload, seed)``, which is already
    the contract behind fingerprint-keyed result caching).

    Example::

        from repro.api import RunnerTemplate, ScenarioSpec

        template = RunnerTemplate.for_spec(
            ScenarioSpec(workload={"kind": "benchmark",
                                   "params": {"name": "sort", "num_jobs": 10}},
                         strategy="clone")
        )
        replicas = [template.run(seed) for seed in range(5)]
        print([round(r.report.pocd, 3) for r in replicas])

    :func:`run` uses a small LRU of templates internally, so sweeps that
    stream many same-family specs (``seed`` grids in particular) get the
    amortization without touching this class.
    """

    __slots__ = ("_spec", "_strategy", "_estimator", "_jobs")

    #: Per-template cap on memoized per-seed workloads.
    _JOBS_CACHE_SIZE = 16

    def __init__(self, spec: ScenarioSpec):
        if not isinstance(spec, ScenarioSpec):
            raise SpecValidationError(
                "spec", f"expected ScenarioSpec, got {type(spec).__name__}"
            )
        self._spec = spec
        self._strategy = spec.build_strategy()
        if spec.estimator is not None:
            self._estimator = _registry.ESTIMATORS.get(spec.estimator)
        else:
            self._estimator = default_estimator_for(self._strategy.name)
        self._jobs: "OrderedDict[int, List[JobSpec]]" = OrderedDict()

    @property
    def spec(self) -> ScenarioSpec:
        """The spec this template was built from (one member of the family)."""
        return self._spec

    @classmethod
    def for_spec(cls, spec: ScenarioSpec) -> "RunnerTemplate":
        """The cached template for ``spec``'s family (built on first use)."""
        if not isinstance(spec, ScenarioSpec):
            raise SpecValidationError(
                "spec", f"expected ScenarioSpec, got {type(spec).__name__}"
            )
        family = dict(spec.to_dict(), seed=0)
        key = (_registry.registry_epoch(), canonical_json(family))
        template = _TEMPLATES.get(key)
        if template is None:
            template = cls(spec)
            _TEMPLATES[key] = template
            while len(_TEMPLATES) > _TEMPLATE_CACHE_SIZE:
                _TEMPLATES.popitem(last=False)
        else:
            _TEMPLATES.move_to_end(key)
        return template

    def jobs_for(self, seed: int) -> List[JobSpec]:
        """The family's workload materialized for ``seed`` (memoized)."""
        jobs = self._jobs.get(seed)
        if jobs is None:
            if seed == self._spec.seed:
                jobs = self._spec.build_jobs()
            else:
                jobs = dataclasses.replace(self._spec, seed=seed).build_jobs()
            self._jobs[seed] = jobs
            while len(self._jobs) > self._JOBS_CACHE_SIZE:
                self._jobs.popitem(last=False)
        else:
            self._jobs.move_to_end(seed)
        return jobs

    def run(self, seed: Optional[int] = None) -> ScenarioResult:
        """Execute one replica: the template's spec re-seeded with ``seed``."""
        spec = self._spec
        if seed is not None and seed != spec.seed:
            spec = dataclasses.replace(spec, seed=seed)
        return self._execute(spec)

    def _execute(self, spec: ScenarioSpec) -> ScenarioResult:
        jobs = self.jobs_for(spec.seed)
        runner = SimulationRunner(
            cluster=spec.cluster,
            hadoop=spec.hadoop,
            seed=spec.seed,
            max_events=spec.max_events,
            profiler=telemetry.active_profiler(),
        )
        started = time.perf_counter()
        report = runner.run(jobs, self._strategy, estimator=self._estimator)
        wall_time = time.perf_counter() - started
        _SCENARIO_WALL.observe(wall_time)
        return ScenarioResult(
            spec=spec,
            report=report,
            fingerprint=spec.fingerprint(),
            wall_time_s=wall_time,
        )


# Small LRU of templates keyed by (registry epoch, seed-masked canonical
# spec JSON).  Sized for a handful of concurrently-swept families; each
# worker process keeps its own.
_TEMPLATE_CACHE_SIZE = 8
_TEMPLATES: "OrderedDict[Tuple[int, str], RunnerTemplate]" = OrderedDict()


def clear_template_cache() -> None:
    """Drop all cached :class:`RunnerTemplate` instances (mainly for tests)."""
    _TEMPLATES.clear()


def run(spec: ScenarioSpec) -> ScenarioResult:
    """Execute one scenario end to end and return its result.

    Resolves the workload, strategy and estimator through the plugin
    registries via a cached :class:`RunnerTemplate` (seed-independent
    construction is amortized across replica specs), builds a fresh
    :class:`SimulationRunner` (no simulation state is shared between
    runs) and times the simulation.
    """
    if not isinstance(spec, ScenarioSpec):
        raise SpecValidationError("spec", f"expected ScenarioSpec, got {type(spec).__name__}")
    return RunnerTemplate.for_spec(spec)._execute(spec)


# ----------------------------------------------------------------------
# Polymorphic spec/result dispatch
# ----------------------------------------------------------------------
# Cluster payloads carry a "kind": "cluster" discriminator (which plain
# ScenarioSpec.from_dict would reject as an unknown field, so the two
# payload spaces cannot be confused).  The cluster package imports
# repro.api, hence the lazy imports here.
_CLUSTER_KIND = "cluster"


def _is_cluster_payload(data: Any) -> bool:
    return isinstance(data, Mapping) and data.get("kind") == _CLUSTER_KIND


def spec_from_dict(data: Mapping[str, Any]):
    """Rebuild a :class:`ScenarioSpec` *or* ``ClusterSpec`` from JSON.

    Dispatches on the ``"kind"`` discriminator: payloads tagged
    ``"cluster"`` resolve through :mod:`repro.cluster`, everything else
    through :meth:`ScenarioSpec.from_dict`.
    """
    if _is_cluster_payload(data):
        from repro.cluster import ClusterSpec

        return ClusterSpec.from_dict(data)
    return ScenarioSpec.from_dict(data)


def result_from_dict(data: Mapping[str, Any]):
    """Rebuild a :class:`ScenarioResult` *or* ``ClusterResult`` from JSON."""
    if isinstance(data, Mapping) and _is_cluster_payload(data.get("spec")):
        from repro.cluster import ClusterResult

        return ClusterResult.from_dict(data)
    return ScenarioResult.from_dict(data)


def execute(spec):
    """Run any spec: :func:`run` for scenarios, ``run_cluster`` for clusters."""
    if getattr(spec, "kind", None) == _CLUSTER_KIND:
        from repro.cluster import run_cluster

        return run_cluster(spec)
    return run(spec)
