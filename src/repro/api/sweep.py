"""Grid sweeps over scenario specs: streaming execution, caching, control.

:class:`Sweep` expands a base :class:`~repro.api.spec.ScenarioSpec` with a
list of dotted-path override mappings (or a full cartesian grid via
:meth:`Sweep.grid`) and runs the resulting scenarios through a pluggable
executor backend — ``"inline"`` (this process), ``"pool"`` (a
``concurrent.futures`` process pool; specs are plain serializable data,
so they pickle cheaply) or ``"distributed"`` (a durable sqlite queue
shared by worker processes, see :mod:`repro.distributed`) — optionally
against a fingerprint-keyed :class:`ResultCache` so repeated sweeps only
pay for scenarios they have not seen before.

Execution is *event driven*: every backend reports progress through one
stream of :class:`~repro.api.events.SweepEvent` objects.
:func:`stream_specs` / :meth:`Sweep.stream` yield those events as
scenarios complete; the blocking :func:`run_specs` / :meth:`Sweep.run`
are thin consumers of the same stream that assemble a
:class:`SweepResult`.  On top of the stream sit cooperative cancellation
(:class:`CancelToken`; Ctrl-C returns a *partial* result instead of
losing finished work) and registry-pluggable early stopping
(:func:`register_stop_condition`).

Example::

    from repro.api import CancelToken, ScenarioSpec, Sweep, WorkloadSpec

    base = ScenarioSpec(
        workload=WorkloadSpec("google-trace", {"num_jobs": 50}),
        strategy="s-resume",
    )
    sweep = Sweep.grid(base, {
        "strategy": ["clone", "s-restart", "s-resume"],
        "strategy_params.theta": [1e-5, 1e-4],
    })
    for event in sweep.stream(jobs=4):          # live progress
        print(event.kind, getattr(event, "fingerprint", ""))

    token = CancelToken()                        # cancellable blocking run
    result = sweep.run(jobs=4, cancel=token, stop="max_failures")
    print(result.to_text())
"""

from __future__ import annotations

import concurrent.futures
import csv
import io
import itertools
import json
import os
import threading
import time
import uuid
from dataclasses import dataclass, replace
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.api.events import (
    ScenarioCacheHit,
    ScenarioCompleted,
    ScenarioFailed,
    ScenarioQueued,
    ScenarioStarted,
    SweepEvent,
    SweepFinished,
    SweepStarted,
)
from repro.api.facade import ScenarioResult, execute, result_from_dict, spec_from_dict
from repro.api.registry import Registry, UnknownPluginError
from repro.api.spec import ScenarioSpec, SpecValidationError
from repro.simulator.metrics import SimulationReport
from repro import telemetry
from repro.telemetry import new_sweep_id

_SWEEP_SCENARIOS = telemetry.counter(
    "chronos_sweep_scenarios_total",
    "Scenarios resolved by sweeps, by outcome",
    labelnames=("outcome",),
)
_SWEEP_RATE = telemetry.gauge(
    "chronos_sweep_scenarios_per_second",
    "Scenario throughput (executed + cache hits over wall time) of the last sweep",
)
_SWEEP_HIT_RATIO = telemetry.gauge(
    "chronos_sweep_cache_hit_ratio",
    "Fraction of the last sweep answered by caches instead of execution",
)


class ResultCache:
    """Fingerprint-keyed cache of scenario results.

    Always caches in memory; when given a directory it also persists each
    result as ``<fingerprint>.json`` so later processes (or a re-run of
    the same sweep command) skip finished scenarios entirely.  Corrupt or
    unreadable cache files are treated as misses, never as errors.
    """

    def __init__(self, directory: Optional[Union[str, Path]] = None):
        self._memory: Dict[str, ScenarioResult] = {}
        self._directory = Path(directory) if directory is not None else None
        if self._directory is not None:
            self._directory.mkdir(parents=True, exist_ok=True)

    @property
    def directory(self) -> Optional[Path]:
        """On-disk location, or ``None`` for a memory-only cache."""
        return self._directory

    def get(self, fingerprint: str) -> Optional[ScenarioResult]:
        """The cached result for a fingerprint, or ``None`` on a miss."""
        if fingerprint in self._memory:
            return self._memory[fingerprint]
        if self._directory is not None:
            path = self._directory / f"{fingerprint}.json"
            if path.is_file():
                try:
                    result = result_from_dict(json.loads(path.read_text()))
                except (ValueError, TypeError, KeyError):
                    return None
                self._memory[fingerprint] = result
                return result
        return None

    def put(self, result: ScenarioResult) -> None:
        """Store a result under its fingerprint (memory and, if set, disk).

        The disk write goes through a uniquely-named temp file in the
        same directory followed by an atomic rename, so concurrent
        writers of one fingerprint (two sweeps sharing a cache dir) can
        never leave — or let a reader observe — interleaved partial JSON.
        """
        self._memory[result.fingerprint] = result
        if self._directory is not None:
            path = self._directory / f"{result.fingerprint}.json"
            temp = self._directory / f"{result.fingerprint}.{os.getpid()}.{uuid.uuid4().hex}.tmp"
            temp.write_text(json.dumps(result.to_dict()))
            os.replace(temp, path)

    def clear(self) -> None:
        """Drop the in-memory entries (on-disk files are left alone)."""
        self._memory.clear()

    def __len__(self) -> int:
        """Number of in-memory entries (on-disk-only entries not counted)."""
        return len(self._memory)

    def __contains__(self, fingerprint: object) -> bool:
        """Whether a result for ``fingerprint`` is available (memory or disk)."""
        return isinstance(fingerprint, str) and self.get(fingerprint) is not None


def _execute_spec_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Process-pool worker: rebuild the spec, run it, return a plain dict.

    Trading dicts (rather than live objects) across the pool exercises the
    same serialization path as the on-disk cache and keeps the contract
    picklable regardless of what plugins produce.
    """
    return execute(spec_from_dict(payload)).to_dict()


def _is_sweepable_spec(spec: Any) -> bool:
    """Whether a value can anchor a sweep (scenario or cluster spec)."""
    if isinstance(spec, ScenarioSpec):
        return True
    return (
        getattr(spec, "kind", None) == "cluster"
        and callable(getattr(spec, "with_overrides", None))
        and callable(getattr(spec, "fingerprint", None))
    )


# ----------------------------------------------------------------------
# Executor backends
# ----------------------------------------------------------------------
#: Names of the pluggable executor backends.
EXECUTORS = ("inline", "pool", "distributed")

#: Process-wide executor defaults, set by :func:`set_default_executor`.
_executor_defaults: Dict[str, Any] = {
    "executor": None,
    "workers": None,
    "db": None,
    "broker": None,
}

#: Process-wide event callback, set by :func:`set_default_on_event`.
_default_on_event: Optional[Callable[[SweepEvent], None]] = None


def _validate_broker_url(broker: Union[str, Path]) -> str:
    text = str(broker)
    if not (
        text.startswith("http://")
        or text.startswith("https://")
        or text.startswith("shards:")
    ):
        raise ValueError(
            f"broker must be an http(s):// sweep-service URL or a 'shards:' "
            f"federation spec, got {broker!r}"
        )
    return text


def set_default_executor(
    executor: Optional[str] = None,
    *,
    workers: Optional[int] = None,
    db: Optional[Union[str, Path]] = None,
    broker: Optional[str] = None,
) -> None:
    """Set the process-wide executor backend used when callers pass none.

    This is how whole call trees that predate the distributed backend —
    the six experiment harnesses, ``run_strategy_suite``, user scripts —
    can be pointed at a worker fleet without changing a line of them:
    the CLI (``--executor distributed --workers 4``, or ``--broker
    http://host:8176`` for a remote sweep service) or a conftest sets
    the default once, and every :func:`run_specs` call follows it.

    ``executor=None`` restores the automatic choice (``"pool"`` when
    ``jobs > 1``, else ``"inline"``); a ``broker`` URL implies
    ``"distributed"``.
    """
    if broker is not None:
        broker = _validate_broker_url(broker)
        if executor is None:
            executor = "distributed"
    if executor is not None and executor not in EXECUTORS:
        raise ValueError(f"unknown executor {executor!r} (available: {', '.join(EXECUTORS)})")
    if broker is not None and executor != "distributed":
        raise ValueError("broker= requires the distributed executor")
    if broker is not None and db is not None:
        raise ValueError("pass either db (sqlite path) or broker (service URL), not both")
    if workers is not None and workers < 1:
        raise ValueError("workers must be a positive integer")
    _executor_defaults["executor"] = executor
    _executor_defaults["workers"] = workers
    _executor_defaults["db"] = db
    _executor_defaults["broker"] = broker


def default_executor() -> Optional[str]:
    """The process-wide default backend, or ``None`` for automatic."""
    return _executor_defaults["executor"]


def set_default_on_event(callback: Optional[Callable[[SweepEvent], None]]) -> None:
    """Set a process-wide event callback for blocking sweeps.

    Every :func:`run_specs` call that does not pass its own ``on_event``
    feeds its event stream through ``callback`` — which is how the CLI's
    ``--progress`` renders a live progress line for the experiment
    harnesses without threading a parameter through each of them.
    ``None`` clears the default.
    """
    global _default_on_event
    _default_on_event = callback


def default_on_event() -> Optional[Callable[[SweepEvent], None]]:
    """The process-wide event callback, or ``None``."""
    return _default_on_event


# ----------------------------------------------------------------------
# Cancellation and early stopping
# ----------------------------------------------------------------------
class CancelToken:
    """Cooperative cancellation flag shared by a sweep and its caller.

    Thread safe: trip it from a signal handler, another thread, or an
    ``on_event`` callback.  Executors poll it between scenarios (and on
    every supervision pass, for the distributed backend), finish what is
    in flight, release unclaimed work and return — so a cancelled
    ``run_specs`` yields a *partial* :class:`SweepResult` instead of
    discarding everything.
    """

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        """Request cancellation (idempotent)."""
        self._event.set()

    def cancelled(self) -> bool:
        """Whether cancellation has been requested."""
        return self._event.is_set()


#: A stop condition: called with every sweep event, returns True to stop.
StopCondition = Callable[[SweepEvent], bool]

#: Registry of stop-condition *factories*: each call builds a fresh,
#: possibly stateful condition (counters must not leak across sweeps).
STOP_CONDITIONS: Registry[Callable[..., StopCondition]] = Registry("stop condition")


def register_stop_condition(name: str, factory: Optional[Callable[..., StopCondition]] = None):
    """Register a stop-condition factory (usable as a decorator).

    A factory takes keyword configuration and returns a fresh callable
    ``condition(event) -> bool``; the sweep stops early (returning a
    partial result with ``stopped=True``) the first time the condition
    answers ``True``.  Factories registered here can be named by string
    in ``run_specs(..., stop="max_failures")``.
    """
    return STOP_CONDITIONS.register(name, factory)


def make_stop_condition(name: str, **kwargs: Any) -> StopCondition:
    """Instantiate a registered stop condition by name."""
    return STOP_CONDITIONS.get(name)(**kwargs)


def available_stop_conditions() -> tuple:
    """Names of the registered stop-condition factories."""
    return STOP_CONDITIONS.names()


@register_stop_condition("max_failures")
def _max_failures(limit: int = 1) -> StopCondition:
    """Stop once ``limit`` scenarios have failed.

    Pair with ``on_failure="continue"`` — under the default
    ``on_failure="raise"`` the first failure raises before a second one
    can ever be counted.
    """
    if limit < 1:
        raise ValueError("limit must be a positive integer")
    seen = 0

    def condition(event: SweepEvent) -> bool:
        nonlocal seen
        if isinstance(event, ScenarioFailed):
            seen += 1
        return seen >= limit

    return condition


@register_stop_condition("first_deadline_miss")
def _first_deadline_miss() -> StopCondition:
    """Stop at the first scenario whose report shows a missed deadline.

    The Chronos question is often binary — "does this configuration keep
    PoCD at 1.0?" — and a 10⁴-scenario sweep can stop the moment the
    answer is no.
    """

    def condition(event: SweepEvent) -> bool:
        if isinstance(event, (ScenarioCompleted, ScenarioCacheHit)) and event.result is not None:
            return event.result.report.pocd < 1.0
        return False

    return condition


def _resolve_stop(stop: Union[None, str, StopCondition]) -> Optional[StopCondition]:
    """A ready stop condition from a name, a callable, or ``None``."""
    if stop is None:
        return None
    if isinstance(stop, str):
        return make_stop_condition(stop)
    if callable(stop):
        return stop
    raise ValueError(
        f"stop must be a callable, a registered name or None, got {type(stop).__name__}"
    )


@dataclass(frozen=True)
class SweepResult:
    """Outcome of running a batch of scenarios.

    ``executed`` counts simulations actually performed; ``cache_hits``
    counts scenarios answered from the cache; duplicate fingerprints
    within one batch are executed once and fanned back out, so
    ``executed + cache_hits`` can be less than ``len(results)``.

    A *partial* result (cancelled sweep, tripped stop condition, or
    ``on_failure="continue"``) partitions the batch: ``results`` holds
    the completed scenarios in submission order and ``pending`` the
    specs that never finished — re-running exactly those completes the
    sweep without repeating paid-for work.
    """

    results: Tuple[ScenarioResult, ...]
    executed: int
    cache_hits: int
    wall_time_s: float
    pending: Tuple[ScenarioSpec, ...] = ()
    failures: int = 0
    cancelled: bool = False
    stopped: bool = False

    def __len__(self) -> int:
        """Number of completed results."""
        return len(self.results)

    def __iter__(self) -> Iterator[ScenarioResult]:
        """Iterate over the completed results, in spec order."""
        return iter(self.results)

    def __getitem__(self, index: int) -> ScenarioResult:
        """The ``index``-th completed result."""
        return self.results[index]

    @property
    def completed(self) -> Tuple[ScenarioResult, ...]:
        """The completed partition (alias of ``results``)."""
        return self.results

    @property
    def partial(self) -> bool:
        """Whether the sweep ended before every scenario finished."""
        return bool(self.pending) or self.cancelled or self.stopped

    @property
    def reports(self) -> Tuple[SimulationReport, ...]:
        """The simulation reports, in scenario order."""
        return tuple(result.report for result in self.results)

    # ------------------------------------------------------------------
    # Tabular export
    # ------------------------------------------------------------------
    #: Columns of the tabular exports, in order.
    COLUMNS = (
        "fingerprint",
        "workload",
        "strategy",
        "estimator",
        "seed",
        "num_jobs",
        "pocd",
        "mean_cost",
        "mean_machine_time",
        "mean_response_time",
        "utility",
        "wall_time_s",
    )

    def to_rows(self) -> List[Dict[str, Any]]:
        """One summary dict per scenario (columns in :attr:`COLUMNS`)."""
        return [result.summary_row() for result in self.results]

    def to_csv(self) -> str:
        """The summary rows as CSV text."""
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=list(self.COLUMNS))
        writer.writeheader()
        for row in self.to_rows():
            writer.writerow(row)
        return buffer.getvalue()

    def to_text(self, float_format: str = "{:.4g}") -> str:
        """The summary rows as an aligned plain-text table."""
        header = list(self.COLUMNS)
        body = []
        for row in self.to_rows():
            rendered = []
            for column in header:
                value = row[column]
                rendered.append(
                    float_format.format(value) if isinstance(value, float) else str(value)
                )
            body.append(rendered)
        widths = [
            max(len(header[i]), *(len(line[i]) for line in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = ["  ".join(header[i].ljust(widths[i]) for i in range(len(header)))]
        lines.append("  ".join("-" * widths[i] for i in range(len(header))))
        for line in body:
            lines.append("  ".join(line[i].ljust(widths[i]) for i in range(len(header))))
        summary = (
            f"{len(self.results)} scenarios: {self.executed} executed, "
            f"{self.cache_hits} cache hits, {self.wall_time_s:.1f}s"
        )
        if self.partial:
            if self.stopped:
                state = "stopped early"
            elif self.cancelled:
                state = "cancelled"
            else:  # failures under on_failure="continue", nothing cancelled
                state = "incomplete"
            summary += f" [{state}: {len(self.pending)} pending, {self.failures} failed]"
        lines.append(summary)
        return "\n".join(lines)


# ----------------------------------------------------------------------
# The event stream (all executors) and its blocking consumer
# ----------------------------------------------------------------------
def _resolve_plan(
    jobs: int,
    executor: Optional[str],
    workers: Optional[int],
    db: Optional[Union[str, Path]],
    broker: Optional[str],
) -> Tuple[str, Optional[int], Optional[Union[str, Path]], Optional[str]]:
    """Validate and resolve the executor/workers/db/broker choice."""
    if jobs < 1:
        raise ValueError("jobs must be a positive integer")
    if executor is None:
        executor = _executor_defaults["executor"]
    if broker is None and db is None:
        # Defaults are one queue-target setting: only consult them when the
        # caller pinned neither target explicitly.
        db = _executor_defaults["db"]
        broker = _executor_defaults["broker"]
    if broker is not None:
        broker = _validate_broker_url(broker)
        if executor is None:
            executor = "distributed"
    if executor is None:
        executor = "pool" if jobs > 1 else "inline"
    if executor not in EXECUTORS:
        raise ValueError(f"unknown executor {executor!r} (available: {', '.join(EXECUTORS)})")
    if broker is not None and executor != "distributed":
        raise ValueError("broker= requires the distributed executor")
    if broker is not None and db is not None:
        raise ValueError("pass either db (sqlite path) or broker (service URL), not both")
    if workers is None:
        workers = _executor_defaults["workers"]
    if workers is not None and workers < 1:
        raise ValueError("workers must be a positive integer")
    return executor, workers, db, broker


def stream_specs(
    specs: Sequence[ScenarioSpec],
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    executor: Optional[str] = None,
    workers: Optional[int] = None,
    db: Optional[Union[str, Path]] = None,
    broker: Optional[str] = None,
    lease_timeout: Optional[float] = None,
    cancel: Optional[CancelToken] = None,
    stop: Union[None, str, StopCondition] = None,
    on_failure: str = "raise",
) -> Iterator[SweepEvent]:
    """Run a batch of scenarios, yielding events as they happen.

    This is the one execution path of the sweep layer: the generator
    emits a :class:`~repro.api.events.SweepStarted`, one
    ``ScenarioCacheHit``/``ScenarioQueued`` per scenario, per-scenario
    lifecycle events from the chosen backend as they occur (the first
    event arrives long before the last scenario finishes), and a final
    ``SweepFinished`` — identically for the inline, pool and distributed
    backends, including sweeps against a remote ``https://`` broker.

    Parameters mirror :func:`run_specs`, plus:

    cancel:
        A :class:`CancelToken`; tripping it makes every backend finish
        the work in flight, release unclaimed queue tasks and leases,
        and end the stream early (``SweepFinished.cancelled``).
    stop:
        A stop condition — a callable ``condition(event) -> bool`` or
        the name of a factory registered via
        :func:`register_stop_condition` (``"max_failures"``,
        ``"first_deadline_miss"``, ...).  Evaluated against every event;
        the first ``True`` ends the sweep (``SweepFinished.stopped``).
    on_failure:
        ``"raise"`` (default) re-raises a scenario's error out of the
        stream after emitting ``ScenarioFailed`` — the pre-streaming
        behaviour; ``"continue"`` keeps going, leaving failed scenarios
        in the pending partition.

    Closing the generator early (``break``/``close()``/Ctrl-C) performs
    the same cleanup as cancellation.
    """
    executor, workers, db, broker = _resolve_plan(jobs, executor, workers, db, broker)
    if on_failure not in ("raise", "continue"):
        raise ValueError(f"on_failure must be 'raise' or 'continue', got {on_failure!r}")
    stop_condition = _resolve_stop(stop)
    token = cancel if cancel is not None else CancelToken()
    return _event_stream(
        list(specs),
        jobs=jobs,
        cache=cache,
        executor=executor,
        workers=workers,
        db=db,
        broker=broker,
        lease_timeout=lease_timeout,
        token=token,
        stop_condition=stop_condition,
        on_failure=on_failure,
    )


def _event_stream(
    specs: List[ScenarioSpec],
    *,
    jobs: int,
    cache: Optional[ResultCache],
    executor: str,
    workers: Optional[int],
    db: Optional[Union[str, Path]],
    broker: Optional[str],
    lease_timeout: Optional[float],
    token: CancelToken,
    stop_condition: Optional[StopCondition],
    on_failure: str,
) -> Iterator[SweepEvent]:
    """The generator behind :func:`stream_specs` (options pre-validated)."""
    started = time.perf_counter()
    sweep_id = new_sweep_id()

    def clock() -> float:
        return time.perf_counter() - started

    def stamp(event: SweepEvent) -> SweepEvent:
        """Correlate one event with this sweep (backends never set the id)."""
        if getattr(event, "sweep_id", None) is None:
            return replace(event, sweep_id=sweep_id)
        return event

    executed = 0
    cache_hits = 0
    failures = 0
    stopped = False

    def note(event: SweepEvent) -> None:
        """Evaluate the stop condition against one delivered event."""
        nonlocal stopped
        if stop_condition is not None and not stopped and stop_condition(event):
            stopped = True
            token.cancel()

    event: SweepEvent = SweepStarted(
        total=len(specs), executor=executor, elapsed_s=clock(), sweep_id=sweep_id
    )
    yield event
    note(event)

    pending_by_fp: Dict[str, List[int]] = {}
    for index, spec in enumerate(specs):
        if token.cancelled():
            break
        fingerprint = spec.fingerprint()
        cached = cache.get(fingerprint) if cache is not None else None
        if cached is not None:
            cache_hits += 1
            _SWEEP_SCENARIOS.labels(outcome="cache_hit").inc()
            event = ScenarioCacheHit(
                fingerprint=fingerprint,
                index=index,
                result=cached,
                elapsed_s=clock(),
                sweep_id=sweep_id,
            )
        else:
            pending_by_fp.setdefault(fingerprint, []).append(index)
            event = ScenarioQueued(
                fingerprint=fingerprint, index=index, elapsed_s=clock(), sweep_id=sweep_id
            )
        yield event
        note(event)

    if pending_by_fp and not token.cancelled():
        todo = [
            (fingerprint, specs[indices[0]], indices[0])
            for fingerprint, indices in pending_by_fp.items()
        ]
        backend = _open_backend(
            todo,
            jobs=jobs,
            executor=executor,
            workers=workers,
            db=db,
            broker=broker,
            lease_timeout=lease_timeout,
            token=token,
            on_failure=on_failure,
            clock=clock,
            span={"sweep_id": sweep_id},
        )
        try:
            for event in backend:
                if isinstance(event, ScenarioCompleted):
                    executed += 1
                    _SWEEP_SCENARIOS.labels(outcome="executed").inc()
                    # Cache each result the moment it exists, so work
                    # already done survives a later failure or cancel.
                    if cache is not None and event.result is not None:
                        cache.put(event.result)
                elif isinstance(event, ScenarioCacheHit):
                    # Served by the queue's result store: paid for by an
                    # earlier run, so a cache hit rather than an execution.
                    cache_hits += 1
                    _SWEEP_SCENARIOS.labels(outcome="cache_hit").inc()
                    if cache is not None and event.result is not None:
                        cache.put(event.result)
                elif isinstance(event, ScenarioFailed):
                    failures += 1
                    _SWEEP_SCENARIOS.labels(outcome="failed").inc()
                yield stamp(event)
                note(event)
        finally:
            backend.close()

    elapsed = clock()
    if elapsed > 0:
        _SWEEP_RATE.set((executed + cache_hits) / elapsed)
    if specs:
        _SWEEP_HIT_RATIO.set(cache_hits / len(specs))
    yield SweepFinished(
        total=len(specs),
        executed=executed,
        cache_hits=cache_hits,
        failures=failures,
        cancelled=token.cancelled() and not stopped,
        stopped=stopped,
        elapsed_s=elapsed,
        sweep_id=sweep_id,
    )


def _open_backend(
    todo: List[Tuple[str, ScenarioSpec, int]],
    *,
    jobs: int,
    executor: str,
    workers: Optional[int],
    db: Optional[Union[str, Path]],
    broker: Optional[str],
    lease_timeout: Optional[float],
    token: CancelToken,
    on_failure: str,
    clock: Callable[[], float],
    span: Optional[Dict[str, Any]] = None,
) -> Iterator[SweepEvent]:
    """The per-backend event generator for the deduplicated work list."""
    if executor == "distributed":
        # Imported lazily: repro.distributed depends on repro.api.
        from repro.distributed import executor as _distributed

        if broker is not None and not str(broker).startswith("shards:"):
            # None means "the service's attached fleets do the work".
            fleet = workers
        else:
            # A local db — or a shard federation, which has no implicit
            # attached fleet — defaults to a local worker pool.
            fleet = workers if workers is not None else (jobs if jobs > 1 else 3)
        policy = None
        if lease_timeout is not None:
            from repro.distributed import LeasePolicy

            policy = LeasePolicy(
                timeout=lease_timeout, heartbeat_interval=lease_timeout / 4.0
            )
        return _distributed.execute_stream(
            todo,
            workers=fleet,
            db=db,
            broker=broker,
            policy=policy,
            cancel=token,
            on_failure=on_failure,
            clock=clock,
            span=span,
        )
    pool_workers = workers if workers is not None else jobs
    if executor == "pool" and pool_workers > 1 and len(todo) > 1:
        return _stream_pool(todo, pool_workers, token, on_failure, clock)
    return _stream_inline(todo, token, on_failure, clock)


def _stream_inline(
    todo: Sequence[Tuple[str, ScenarioSpec, int]],
    token: CancelToken,
    on_failure: str,
    clock: Callable[[], float],
) -> Iterator[SweepEvent]:
    """Execute scenarios in this process, one event pair at a time."""
    for fingerprint, spec, index in todo:
        if token.cancelled():
            return
        yield ScenarioStarted(fingerprint=fingerprint, index=index, elapsed_s=clock())
        try:
            outcome = execute(spec)
        except Exception as error:
            yield ScenarioFailed(
                fingerprint=fingerprint,
                index=index,
                error=f"{type(error).__name__}: {error}",
                elapsed_s=clock(),
            )
            if on_failure == "raise":
                raise
            continue
        yield ScenarioCompleted(
            fingerprint=fingerprint, index=index, result=outcome, elapsed_s=clock()
        )


def _stream_pool(
    todo: Sequence[Tuple[str, ScenarioSpec, int]],
    pool_workers: int,
    token: CancelToken,
    on_failure: str,
    clock: Callable[[], float],
) -> Iterator[SweepEvent]:
    """Fan scenarios over a process pool, yielding in completion order."""
    settled: set = set()  # fingerprints completed or failed via the pool
    try:
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=min(pool_workers, len(todo))
        ) as pool:
            try:
                # No ScenarioStarted here: a process pool does not expose
                # when a queued task actually begins, and stamping all N
                # at submission time would fake per-scenario latency.
                # ScenarioResult.wall_time_s (measured in the child)
                # carries the true execution time of each completion.
                futures = {
                    pool.submit(_execute_spec_payload, spec.to_dict()): (fingerprint, index)
                    for fingerprint, spec, index in todo
                }
                outstanding = set(futures)
                draining = False
                while outstanding:
                    if token.cancelled() and not draining:
                        # Withdraw the queued futures (Future.cancel is
                        # synchronous and race-free, unlike shutting the
                        # executor down mid-wait) but harvest what is
                        # already running: those scenarios cost real
                        # compute and are seconds from finishing —
                        # discarding them would force the follow-up run
                        # to pay for them again.
                        draining = True
                        for future in outstanding:
                            future.cancel()
                    finished, outstanding = concurrent.futures.wait(
                        outstanding,
                        timeout=0.1,
                        return_when=concurrent.futures.FIRST_COMPLETED,
                    )
                    for future in finished:
                        if future.cancelled():
                            continue
                        fingerprint, index = futures[future]
                        try:
                            outcome = result_from_dict(future.result())
                        except (SpecValidationError, UnknownPluginError):
                            # Plugins registered only in this process are
                            # invisible to spawn/forkserver workers (children
                            # re-import only the builtins); leave the scenario
                            # for the inline pass below, which can see them.
                            continue
                        except concurrent.futures.process.BrokenProcessPool:
                            raise
                        except Exception as error:
                            settled.add(fingerprint)
                            yield ScenarioFailed(
                                fingerprint=fingerprint,
                                index=index,
                                error=f"{type(error).__name__}: {error}",
                                elapsed_s=clock(),
                            )
                            if on_failure == "raise":
                                raise
                            continue
                        settled.add(fingerprint)
                        yield ScenarioCompleted(
                            fingerprint=fingerprint,
                            index=index,
                            result=outcome,
                            elapsed_s=clock(),
                        )
            except (GeneratorExit, KeyboardInterrupt):
                # The consumer bailed (Ctrl-C, early break): do not sit in
                # the pool's __exit__ waiting for scenarios nobody wants.
                pool.shutdown(wait=False, cancel_futures=True)
                raise
    except concurrent.futures.process.BrokenProcessPool:
        pass  # completed scenarios are already streamed; the rest run inline
    leftovers = [item for item in todo if item[0] not in settled]
    yield from _stream_inline(leftovers, token, on_failure, clock)


def run_specs(
    specs: Sequence[ScenarioSpec],
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    executor: Optional[str] = None,
    workers: Optional[int] = None,
    db: Optional[Union[str, Path]] = None,
    broker: Optional[str] = None,
    lease_timeout: Optional[float] = None,
    on_event: Optional[Callable[[SweepEvent], None]] = None,
    cancel: Optional[CancelToken] = None,
    stop: Union[None, str, StopCondition] = None,
    on_failure: str = "raise",
) -> SweepResult:
    """Run a batch of scenarios, deduplicated by fingerprint.

    A thin consumer of :func:`stream_specs`: it drains the event stream,
    fans results back out to duplicate fingerprints and assembles a
    :class:`SweepResult` — byte-identical (minus wall time) to what the
    pre-streaming implementation returned, on every backend.

    Parameters
    ----------
    specs:
        Scenarios to run; results come back in the same order.
    jobs:
        Worker processes.  ``1`` runs inline (no pickling); ``>1`` fans
        the uncached scenarios out over a process pool.
    cache:
        Optional :class:`ResultCache` (or any object with the same
        ``get``/``put`` surface, e.g.
        :class:`repro.distributed.SqliteResultStore`) consulted before
        executing and updated afterwards.
    executor:
        Backend: ``"inline"``, ``"pool"`` or ``"distributed"``.  ``None``
        follows :func:`set_default_executor` (and a ``broker`` URL
        implies ``"distributed"``), falling back to ``"pool"`` when
        ``jobs > 1`` and ``"inline"`` otherwise.
    workers:
        Worker count for the pool/distributed backends (defaults to
        ``jobs``, or 3 for ``"distributed"`` when ``jobs`` is 1).  With a
        ``broker`` URL the default is *no* local workers — the fleets
        attached to the service do the work; pass a count to also spawn
        a local fleet speaking HTTP.
    db:
        Queue database path for the distributed backend (``"queue.sqlite"``
        or ``"sqlite:queue.sqlite"``).  ``None`` uses a throwaway per-run
        database; pass a real path to make the queue durable — scenarios
        already in its result store are *not* re-executed (they count as
        cache hits).
    broker:
        ``http(s)://host:port`` URL of a ``chronos-experiments serve``
        sweep service.  Mutually exclusive with ``db``: the service owns
        the queue database, and this process (plus any worker fleets
        pointed at the same URL, on any host) talks to it over HTTP.
    lease_timeout:
        Seconds a distributed worker's task lease survives without a
        heartbeat before the task is requeued (default 30).  With a
        ``broker`` URL the server's policy governs actual lease expiry.
    on_event:
        Callback fed every :class:`~repro.api.events.SweepEvent` as it
        happens (progress bars, logging, metrics).  ``None`` falls back
        to :func:`set_default_on_event`.
    cancel:
        A :class:`CancelToken`; tripping it — like pressing Ctrl-C —
        returns a *partial* result (``cancelled=True``) whose
        ``pending`` partition lists the unfinished specs, with queue
        tasks and leases released so a follow-up run completes exactly
        the remainder.
    stop:
        Early-stopping condition (callable or registered name); see
        :func:`stream_specs`.  A tripped condition returns a partial
        result with ``stopped=True``.
    on_failure:
        ``"raise"`` (default) propagates the first scenario error;
        ``"continue"`` records failures and keeps sweeping.
    """
    if on_event is None:
        on_event = _default_on_event
    started = time.perf_counter()
    specs = list(specs)
    stream = stream_specs(
        specs,
        jobs=jobs,
        cache=cache,
        executor=executor,
        workers=workers,
        db=db,
        broker=broker,
        lease_timeout=lease_timeout,
        cancel=cancel,
        stop=stop,
        on_failure=on_failure,
    )
    results: Dict[int, ScenarioResult] = {}
    queued: Dict[str, List[int]] = {}
    executed = 0
    cache_hits = 0
    failures = 0
    finished: Optional[SweepFinished] = None
    interrupted = False
    try:
        for event in stream:
            # Record before notifying: if Ctrl-C lands while the callback
            # runs (or in reaction to what it printed), the completion the
            # callback announced is already part of the partial result.
            if isinstance(event, ScenarioQueued):
                queued.setdefault(event.fingerprint, []).append(event.index)
            elif isinstance(event, ScenarioCacheHit):
                cache_hits += 1
                for index in queued.get(event.fingerprint, (event.index,)):
                    results[index] = event.result
            elif isinstance(event, ScenarioCompleted):
                executed += 1
                for index in queued.get(event.fingerprint, (event.index,)):
                    results[index] = event.result
            elif isinstance(event, ScenarioFailed):
                failures += 1
            elif isinstance(event, SweepFinished):
                finished = event
            if on_event is not None:
                on_event(event)
    except KeyboardInterrupt:
        # Ctrl-C mid-sweep: closing the stream (below) terminates pools,
        # releases unclaimed tasks and drains leases; the work that did
        # finish is returned as a partial result instead of being lost.
        interrupted = True
    finally:
        stream.close()

    cancelled = interrupted or bool(finished and finished.cancelled)
    if not cancelled and finished is None and cancel is not None:
        cancelled = cancel.cancelled()
    return SweepResult(
        results=tuple(results[index] for index in sorted(results)),
        executed=executed,
        cache_hits=cache_hits,
        wall_time_s=(
            finished.elapsed_s if finished is not None else time.perf_counter() - started
        ),
        pending=tuple(specs[index] for index in range(len(specs)) if index not in results),
        failures=failures,
        cancelled=cancelled,
        stopped=bool(finished and finished.stopped),
    )


class Sweep:
    """A batch of scenarios derived from one base spec.

    Construct either with an explicit list of override mappings (dotted
    paths, see :meth:`ScenarioSpec.with_overrides`) or with
    :meth:`Sweep.grid`, which expands the cartesian product of the given
    axes.  All scenarios are validated eagerly, so a typo in any override
    fails fast — before anything is simulated.
    """

    def __init__(
        self,
        base: ScenarioSpec,
        overrides: Optional[Sequence[Mapping[str, Any]]] = None,
    ):
        if not _is_sweepable_spec(base):
            raise SpecValidationError(
                "base",
                f"expected ScenarioSpec or ClusterSpec, got {type(base).__name__}",
            )
        self._base = base
        cleaned = []
        for index, override in enumerate(overrides if overrides is not None else [{}]):
            if not isinstance(override, Mapping):
                raise SpecValidationError(
                    f"overrides[{index}]",
                    f"must be a mapping of dotted paths to values, got {type(override).__name__}",
                )
            cleaned.append(dict(override))
        self._overrides: Tuple[Dict[str, Any], ...] = tuple(cleaned) or ({},)
        self._specs = tuple(base.with_overrides(override) for override in self._overrides)

    @staticmethod
    def grid_overrides(axes: Mapping[str, Sequence[Any]]) -> List[Dict[str, Any]]:
        """Expand grid axes into override mappings without building specs."""
        if not isinstance(axes, Mapping):
            raise SpecValidationError(
                "grid", f"must be a mapping of dotted paths to value lists, got {type(axes).__name__}"
            )
        for key, values in axes.items():
            if isinstance(values, (str, bytes)) or not isinstance(values, Sequence) or not values:
                raise SpecValidationError(
                    str(key), "grid axis must be a non-empty sequence of values"
                )
        keys = list(axes)
        return [
            dict(zip(keys, combo)) for combo in itertools.product(*(axes[key] for key in keys))
        ]

    @classmethod
    def grid(cls, base: ScenarioSpec, axes: Mapping[str, Sequence[Any]]) -> "Sweep":
        """Cartesian-product sweep over dotted-path axes.

        ``Sweep.grid(base, {"strategy": [...], "seed": [0, 1]})`` yields
        one scenario per combination, in row-major (last axis fastest)
        order.
        """
        return cls(base, cls.grid_overrides(axes))

    @property
    def base(self) -> ScenarioSpec:
        """The spec the overrides are applied to."""
        return self._base

    @property
    def overrides(self) -> Tuple[Dict[str, Any], ...]:
        """The override mapping of each scenario, in order."""
        return self._overrides

    @property
    def specs(self) -> Tuple[ScenarioSpec, ...]:
        """The expanded scenario specs, in order."""
        return self._specs

    def __len__(self) -> int:
        """Number of scenarios in the sweep."""
        return len(self._specs)

    def run(
        self,
        *,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        executor: Optional[str] = None,
        workers: Optional[int] = None,
        db: Optional[Union[str, Path]] = None,
        broker: Optional[str] = None,
        lease_timeout: Optional[float] = None,
        on_event: Optional[Callable[[SweepEvent], None]] = None,
        cancel: Optional[CancelToken] = None,
        stop: Union[None, str, StopCondition] = None,
        on_failure: str = "raise",
    ) -> SweepResult:
        """Execute the sweep (see :func:`run_specs`)."""
        return run_specs(
            self._specs,
            jobs=jobs,
            cache=cache,
            executor=executor,
            workers=workers,
            db=db,
            broker=broker,
            lease_timeout=lease_timeout,
            on_event=on_event,
            cancel=cancel,
            stop=stop,
            on_failure=on_failure,
        )

    def stream(
        self,
        *,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        executor: Optional[str] = None,
        workers: Optional[int] = None,
        db: Optional[Union[str, Path]] = None,
        broker: Optional[str] = None,
        lease_timeout: Optional[float] = None,
        cancel: Optional[CancelToken] = None,
        stop: Union[None, str, StopCondition] = None,
        on_failure: str = "raise",
    ) -> Iterator[SweepEvent]:
        """Execute the sweep as an event stream (see :func:`stream_specs`)."""
        return stream_specs(
            self._specs,
            jobs=jobs,
            cache=cache,
            executor=executor,
            workers=workers,
            db=db,
            broker=broker,
            lease_timeout=lease_timeout,
            cancel=cancel,
            stop=stop,
            on_failure=on_failure,
        )
