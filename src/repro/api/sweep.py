"""Grid sweeps over scenario specs: parallel execution plus result caching.

:class:`Sweep` expands a base :class:`~repro.api.spec.ScenarioSpec` with a
list of dotted-path override mappings (or a full cartesian grid via
:meth:`Sweep.grid`) and runs the resulting scenarios through a pluggable
executor backend — ``"inline"`` (this process), ``"pool"`` (a
``concurrent.futures`` process pool; specs are plain serializable data,
so they pickle cheaply) or ``"distributed"`` (a durable sqlite queue
shared by worker processes, see :mod:`repro.distributed`) — optionally
against a fingerprint-keyed :class:`ResultCache` so repeated sweeps only
pay for scenarios they have not seen before.

Example::

    from repro.api import ScenarioSpec, Sweep, WorkloadSpec, ResultCache

    base = ScenarioSpec(
        workload=WorkloadSpec("google-trace", {"num_jobs": 50}),
        strategy="s-resume",
    )
    sweep = Sweep.grid(base, {
        "strategy": ["clone", "s-restart", "s-resume"],
        "strategy_params.theta": [1e-5, 1e-4],
    })
    result = sweep.run(jobs=4, cache=ResultCache("results/cache"))
    result = sweep.run(executor="distributed", workers=3, db="queue.sqlite")
    print(result.to_text())
"""

from __future__ import annotations

import concurrent.futures
import csv
import io
import itertools
import json
import os
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.api.facade import ScenarioResult, run
from repro.api.registry import UnknownPluginError
from repro.api.spec import ScenarioSpec, SpecValidationError
from repro.simulator.metrics import SimulationReport


class ResultCache:
    """Fingerprint-keyed cache of scenario results.

    Always caches in memory; when given a directory it also persists each
    result as ``<fingerprint>.json`` so later processes (or a re-run of
    the same sweep command) skip finished scenarios entirely.  Corrupt or
    unreadable cache files are treated as misses, never as errors.
    """

    def __init__(self, directory: Optional[Union[str, Path]] = None):
        self._memory: Dict[str, ScenarioResult] = {}
        self._directory = Path(directory) if directory is not None else None
        if self._directory is not None:
            self._directory.mkdir(parents=True, exist_ok=True)

    @property
    def directory(self) -> Optional[Path]:
        """On-disk location, or ``None`` for a memory-only cache."""
        return self._directory

    def get(self, fingerprint: str) -> Optional[ScenarioResult]:
        """The cached result for a fingerprint, or ``None`` on a miss."""
        if fingerprint in self._memory:
            return self._memory[fingerprint]
        if self._directory is not None:
            path = self._directory / f"{fingerprint}.json"
            if path.is_file():
                try:
                    result = ScenarioResult.from_dict(json.loads(path.read_text()))
                except (ValueError, TypeError, KeyError):
                    return None
                self._memory[fingerprint] = result
                return result
        return None

    def put(self, result: ScenarioResult) -> None:
        """Store a result under its fingerprint (memory and, if set, disk).

        The disk write goes through a uniquely-named temp file in the
        same directory followed by an atomic rename, so concurrent
        writers of one fingerprint (two sweeps sharing a cache dir) can
        never leave — or let a reader observe — interleaved partial JSON.
        """
        self._memory[result.fingerprint] = result
        if self._directory is not None:
            path = self._directory / f"{result.fingerprint}.json"
            temp = self._directory / f"{result.fingerprint}.{os.getpid()}.{uuid.uuid4().hex}.tmp"
            temp.write_text(json.dumps(result.to_dict()))
            os.replace(temp, path)

    def clear(self) -> None:
        """Drop the in-memory entries (on-disk files are left alone)."""
        self._memory.clear()

    def __len__(self) -> int:
        return len(self._memory)

    def __contains__(self, fingerprint: object) -> bool:
        return isinstance(fingerprint, str) and self.get(fingerprint) is not None


def _execute_spec_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Process-pool worker: rebuild the spec, run it, return a plain dict.

    Trading dicts (rather than live objects) across the pool exercises the
    same serialization path as the on-disk cache and keeps the contract
    picklable regardless of what plugins produce.
    """
    return run(ScenarioSpec.from_dict(payload)).to_dict()


# ----------------------------------------------------------------------
# Executor backends
# ----------------------------------------------------------------------
#: Names of the pluggable executor backends.
EXECUTORS = ("inline", "pool", "distributed")

#: Process-wide executor defaults, set by :func:`set_default_executor`.
_executor_defaults: Dict[str, Any] = {
    "executor": None,
    "workers": None,
    "db": None,
    "broker": None,
}


def _validate_broker_url(broker: Union[str, Path]) -> str:
    text = str(broker)
    if not (text.startswith("http://") or text.startswith("https://")):
        raise ValueError(f"broker must be an http(s):// sweep-service URL, got {broker!r}")
    return text


def set_default_executor(
    executor: Optional[str] = None,
    *,
    workers: Optional[int] = None,
    db: Optional[Union[str, Path]] = None,
    broker: Optional[str] = None,
) -> None:
    """Set the process-wide executor backend used when callers pass none.

    This is how whole call trees that predate the distributed backend —
    the six experiment harnesses, ``run_strategy_suite``, user scripts —
    can be pointed at a worker fleet without changing a line of them:
    the CLI (``--executor distributed --workers 4``, or ``--broker
    http://host:8176`` for a remote sweep service) or a conftest sets
    the default once, and every :func:`run_specs` call follows it.

    ``executor=None`` restores the automatic choice (``"pool"`` when
    ``jobs > 1``, else ``"inline"``); a ``broker`` URL implies
    ``"distributed"``.
    """
    if broker is not None:
        broker = _validate_broker_url(broker)
        if executor is None:
            executor = "distributed"
    if executor is not None and executor not in EXECUTORS:
        raise ValueError(f"unknown executor {executor!r} (available: {', '.join(EXECUTORS)})")
    if broker is not None and executor != "distributed":
        raise ValueError("broker= requires the distributed executor")
    if broker is not None and db is not None:
        raise ValueError("pass either db (sqlite path) or broker (service URL), not both")
    if workers is not None and workers < 1:
        raise ValueError("workers must be a positive integer")
    _executor_defaults["executor"] = executor
    _executor_defaults["workers"] = workers
    _executor_defaults["db"] = db
    _executor_defaults["broker"] = broker


def default_executor() -> Optional[str]:
    """The process-wide default backend, or ``None`` for automatic."""
    return _executor_defaults["executor"]


@dataclass(frozen=True)
class SweepResult:
    """Outcome of running a batch of scenarios.

    ``executed`` counts simulations actually performed; ``cache_hits``
    counts scenarios answered from the cache; duplicate fingerprints
    within one batch are executed once and fanned back out, so
    ``executed + cache_hits`` can be less than ``len(results)``.
    """

    results: Tuple[ScenarioResult, ...]
    executed: int
    cache_hits: int
    wall_time_s: float

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[ScenarioResult]:
        return iter(self.results)

    def __getitem__(self, index: int) -> ScenarioResult:
        return self.results[index]

    @property
    def reports(self) -> Tuple[SimulationReport, ...]:
        """The simulation reports, in scenario order."""
        return tuple(result.report for result in self.results)

    # ------------------------------------------------------------------
    # Tabular export
    # ------------------------------------------------------------------
    #: Columns of the tabular exports, in order.
    COLUMNS = (
        "fingerprint",
        "workload",
        "strategy",
        "estimator",
        "seed",
        "num_jobs",
        "pocd",
        "mean_cost",
        "mean_machine_time",
        "mean_response_time",
        "utility",
        "wall_time_s",
    )

    def to_rows(self) -> List[Dict[str, Any]]:
        """One summary dict per scenario (columns in :attr:`COLUMNS`)."""
        rows = []
        for result in self.results:
            spec, report = result.spec, result.report
            params = spec.strategy_params
            rows.append(
                {
                    "fingerprint": result.fingerprint,
                    "workload": spec.workload.kind,
                    "strategy": spec.strategy,
                    "estimator": spec.estimator or "default",
                    "seed": spec.seed,
                    "num_jobs": report.num_jobs,
                    "pocd": report.pocd,
                    "mean_cost": report.mean_cost,
                    "mean_machine_time": report.mean_machine_time,
                    "mean_response_time": report.mean_response_time,
                    "utility": report.net_utility(
                        r_min_pocd=params.r_min_pocd, theta=params.theta
                    ),
                    "wall_time_s": result.wall_time_s,
                }
            )
        return rows

    def to_csv(self) -> str:
        """The summary rows as CSV text."""
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=list(self.COLUMNS))
        writer.writeheader()
        for row in self.to_rows():
            writer.writerow(row)
        return buffer.getvalue()

    def to_text(self, float_format: str = "{:.4g}") -> str:
        """The summary rows as an aligned plain-text table."""
        header = list(self.COLUMNS)
        body = []
        for row in self.to_rows():
            rendered = []
            for column in header:
                value = row[column]
                rendered.append(
                    float_format.format(value) if isinstance(value, float) else str(value)
                )
            body.append(rendered)
        widths = [
            max(len(header[i]), *(len(line[i]) for line in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = ["  ".join(header[i].ljust(widths[i]) for i in range(len(header)))]
        lines.append("  ".join("-" * widths[i] for i in range(len(header))))
        for line in body:
            lines.append("  ".join(line[i].ljust(widths[i]) for i in range(len(header))))
        lines.append(
            f"{len(self.results)} scenarios: {self.executed} executed, "
            f"{self.cache_hits} cache hits, {self.wall_time_s:.1f}s"
        )
        return "\n".join(lines)


def run_specs(
    specs: Sequence[ScenarioSpec],
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    executor: Optional[str] = None,
    workers: Optional[int] = None,
    db: Optional[Union[str, Path]] = None,
    broker: Optional[str] = None,
    lease_timeout: Optional[float] = None,
) -> SweepResult:
    """Run a batch of scenarios, deduplicated by fingerprint.

    Parameters
    ----------
    specs:
        Scenarios to run; results come back in the same order.
    jobs:
        Worker processes.  ``1`` runs inline (no pickling); ``>1`` fans
        the uncached scenarios out over a process pool.
    cache:
        Optional :class:`ResultCache` (or any object with the same
        ``get``/``put`` surface, e.g.
        :class:`repro.distributed.SqliteResultStore`) consulted before
        executing and updated afterwards.
    executor:
        Backend: ``"inline"``, ``"pool"`` or ``"distributed"``.  ``None``
        follows :func:`set_default_executor` (and a ``broker`` URL
        implies ``"distributed"``), falling back to ``"pool"`` when
        ``jobs > 1`` and ``"inline"`` otherwise.
    workers:
        Worker count for the pool/distributed backends (defaults to
        ``jobs``, or 3 for ``"distributed"`` when ``jobs`` is 1).  With a
        ``broker`` URL the default is *no* local workers — the fleets
        attached to the service do the work; pass a count to also spawn
        a local fleet speaking HTTP.
    db:
        Queue database path for the distributed backend (``"queue.sqlite"``
        or ``"sqlite:queue.sqlite"``).  ``None`` uses a throwaway per-run
        database; pass a real path to make the queue durable — scenarios
        already in its result store are *not* re-executed (they count as
        cache hits).
    broker:
        ``http(s)://host:port`` URL of a ``chronos-experiments serve``
        sweep service.  Mutually exclusive with ``db``: the service owns
        the queue database, and this process (plus any worker fleets
        pointed at the same URL, on any host) talks to it over HTTP.
    lease_timeout:
        Seconds a distributed worker's task lease survives without a
        heartbeat before the task is requeued (default 30).  With a
        ``broker`` URL the server's policy governs actual lease expiry.
    """
    if jobs < 1:
        raise ValueError("jobs must be a positive integer")
    if executor is None:
        executor = _executor_defaults["executor"]
    if broker is None and db is None:
        # Defaults are one queue-target setting: only consult them when the
        # caller pinned neither target explicitly.
        db = _executor_defaults["db"]
        broker = _executor_defaults["broker"]
    if broker is not None:
        broker = _validate_broker_url(broker)
        if executor is None:
            executor = "distributed"
    if executor is None:
        executor = "pool" if jobs > 1 else "inline"
    if executor not in EXECUTORS:
        raise ValueError(f"unknown executor {executor!r} (available: {', '.join(EXECUTORS)})")
    if broker is not None and executor != "distributed":
        raise ValueError("broker= requires the distributed executor")
    if broker is not None and db is not None:
        raise ValueError("pass either db (sqlite path) or broker (service URL), not both")
    if workers is None:
        workers = _executor_defaults["workers"]
    if workers is not None and workers < 1:
        raise ValueError("workers must be a positive integer")
    started = time.perf_counter()
    fingerprints = [spec.fingerprint() for spec in specs]
    results: Dict[int, ScenarioResult] = {}
    cache_hits = 0
    pending_by_fingerprint: Dict[str, List[int]] = {}
    for index, (spec, fingerprint) in enumerate(zip(specs, fingerprints)):
        cached = cache.get(fingerprint) if cache is not None else None
        if cached is not None:
            results[index] = cached
            cache_hits += 1
        else:
            pending_by_fingerprint.setdefault(fingerprint, []).append(index)

    executed = 0
    if pending_by_fingerprint:
        todo = [
            (fingerprint, specs[indices[0]])
            for fingerprint, indices in pending_by_fingerprint.items()
        ]

        def commit(position: int, outcome: ScenarioResult) -> None:
            # Cache and fan out each result the moment it exists, so work
            # already done survives a later scenario failing mid-batch.
            if cache is not None:
                cache.put(outcome)
            for index in pending_by_fingerprint[todo[position][0]]:
                results[index] = outcome

        done: Dict[int, ScenarioResult] = {}
        if executor == "distributed":
            # Imported lazily: repro.distributed depends on repro.api.
            from repro.distributed import executor as _distributed

            if broker is not None:
                # None means "the service's attached fleets do the work".
                fleet = workers
            else:
                fleet = workers if workers is not None else (jobs if jobs > 1 else 3)
            policy = None
            if lease_timeout is not None:
                from repro.distributed import LeasePolicy

                policy = LeasePolicy(
                    timeout=lease_timeout, heartbeat_interval=lease_timeout / 4.0
                )
            done, served = _distributed.execute(
                todo, commit, workers=fleet, db=db, broker=broker, policy=policy
            )
            # Scenarios answered by the queue's result store were paid for
            # by an earlier run: report them as cache hits, not executions.
            cache_hits += len(served)
            executed = len(done) - len(served)
        else:
            pool_workers = workers if workers is not None else jobs
            if executor == "pool" and pool_workers > 1 and len(todo) > 1:
                try:
                    with concurrent.futures.ProcessPoolExecutor(
                        max_workers=min(pool_workers, len(todo))
                    ) as pool:
                        futures = {
                            pool.submit(_execute_spec_payload, spec.to_dict()): position
                            for position, (_, spec) in enumerate(todo)
                        }
                        for future in concurrent.futures.as_completed(futures):
                            position = futures[future]
                            try:
                                outcome = ScenarioResult.from_dict(future.result())
                            except (SpecValidationError, UnknownPluginError):
                                # Plugins registered only in this process are
                                # invisible to spawn/forkserver workers (children
                                # re-import only the builtins); leave the scenario
                                # for the inline pass below, which can see them.
                                continue
                            done[position] = outcome
                            commit(position, outcome)
                except concurrent.futures.process.BrokenProcessPool:
                    pass  # completed scenarios are committed; the rest run inline
            for position, (_, spec) in enumerate(todo):
                if position not in done:
                    outcome = run(spec)
                    done[position] = outcome
                    commit(position, outcome)
            executed = len(done)

    return SweepResult(
        results=tuple(results[index] for index in range(len(specs))),
        executed=executed,
        cache_hits=cache_hits,
        wall_time_s=time.perf_counter() - started,
    )


class Sweep:
    """A batch of scenarios derived from one base spec.

    Construct either with an explicit list of override mappings (dotted
    paths, see :meth:`ScenarioSpec.with_overrides`) or with
    :meth:`Sweep.grid`, which expands the cartesian product of the given
    axes.  All scenarios are validated eagerly, so a typo in any override
    fails fast — before anything is simulated.
    """

    def __init__(
        self,
        base: ScenarioSpec,
        overrides: Optional[Sequence[Mapping[str, Any]]] = None,
    ):
        if not isinstance(base, ScenarioSpec):
            raise SpecValidationError("base", f"expected ScenarioSpec, got {type(base).__name__}")
        self._base = base
        cleaned = []
        for index, override in enumerate(overrides if overrides is not None else [{}]):
            if not isinstance(override, Mapping):
                raise SpecValidationError(
                    f"overrides[{index}]",
                    f"must be a mapping of dotted paths to values, got {type(override).__name__}",
                )
            cleaned.append(dict(override))
        self._overrides: Tuple[Dict[str, Any], ...] = tuple(cleaned) or ({},)
        self._specs = tuple(base.with_overrides(override) for override in self._overrides)

    @staticmethod
    def grid_overrides(axes: Mapping[str, Sequence[Any]]) -> List[Dict[str, Any]]:
        """Expand grid axes into override mappings without building specs."""
        if not isinstance(axes, Mapping):
            raise SpecValidationError(
                "grid", f"must be a mapping of dotted paths to value lists, got {type(axes).__name__}"
            )
        for key, values in axes.items():
            if isinstance(values, (str, bytes)) or not isinstance(values, Sequence) or not values:
                raise SpecValidationError(
                    str(key), "grid axis must be a non-empty sequence of values"
                )
        keys = list(axes)
        return [
            dict(zip(keys, combo)) for combo in itertools.product(*(axes[key] for key in keys))
        ]

    @classmethod
    def grid(cls, base: ScenarioSpec, axes: Mapping[str, Sequence[Any]]) -> "Sweep":
        """Cartesian-product sweep over dotted-path axes.

        ``Sweep.grid(base, {"strategy": [...], "seed": [0, 1]})`` yields
        one scenario per combination, in row-major (last axis fastest)
        order.
        """
        return cls(base, cls.grid_overrides(axes))

    @property
    def base(self) -> ScenarioSpec:
        """The spec the overrides are applied to."""
        return self._base

    @property
    def overrides(self) -> Tuple[Dict[str, Any], ...]:
        """The override mapping of each scenario, in order."""
        return self._overrides

    @property
    def specs(self) -> Tuple[ScenarioSpec, ...]:
        """The expanded scenario specs, in order."""
        return self._specs

    def __len__(self) -> int:
        return len(self._specs)

    def run(
        self,
        *,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        executor: Optional[str] = None,
        workers: Optional[int] = None,
        db: Optional[Union[str, Path]] = None,
        broker: Optional[str] = None,
        lease_timeout: Optional[float] = None,
    ) -> SweepResult:
        """Execute the sweep (see :func:`run_specs`)."""
        return run_specs(
            self._specs,
            jobs=jobs,
            cache=cache,
            executor=executor,
            workers=workers,
            db=db,
            broker=broker,
            lease_timeout=lease_timeout,
        )
