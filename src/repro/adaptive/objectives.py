"""Named search objectives: what a trial's scenario result is worth.

An :class:`Objective` wraps a function from
:class:`~repro.api.facade.ScenarioResult` to a scalar plus a direction
(``"max"`` or ``"min"``).  The search driver works internally with the
*oriented score* (:meth:`Objective.score` — negated for minimization, so
"higher is better" holds everywhere), while ledgers, events and reports
keep the raw :meth:`Objective.value` a human expects to read.

Objectives live in their own string-keyed registry
(:func:`register_objective`, mirroring the strategy/estimator
registries), so an experiment can search on any scalar it can compute::

    from repro.api import register_objective

    @register_objective("p99_response", direction="min")
    def p99_response(result):
        return result.report.mean_response_time  # or a real percentile

Built-ins: ``utility`` (the paper's net-utility, maximized), ``pocd``
(maximized), ``cost``, ``response_time`` and ``machine_time`` (each
minimized).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.api.facade import ScenarioResult
from repro.api.registry import Registry

#: Maps a scenario result to the raw objective scalar.
ObjectiveFn = Callable[[ScenarioResult], float]


@dataclass(frozen=True)
class Objective:
    """A named scalar objective with an optimization direction."""

    name: str
    fn: ObjectiveFn
    direction: str = "max"

    def __post_init__(self) -> None:
        """Reject directions other than ``"max"`` / ``"min"``."""
        if self.direction not in ("max", "min"):
            raise ValueError(
                f"objective direction must be 'max' or 'min', got {self.direction!r}"
            )

    def value(self, result: ScenarioResult) -> float:
        """The raw objective value (what humans read)."""
        return float(self.fn(result))

    def score(self, result: ScenarioResult) -> float:
        """The oriented value (higher is always better)."""
        value = self.value(result)
        return value if self.direction == "max" else -value

    def orient(self, value: float) -> float:
        """Orient an already-computed raw value."""
        return value if self.direction == "max" else -value


#: Objective name -> :class:`Objective`.
OBJECTIVES: Registry[Objective] = Registry("objective")


def register_objective(
    name: str, fn: Optional[ObjectiveFn] = None, *, direction: str = "max", **kwargs: Any
):
    """Register an objective function; decorator form when ``fn`` is omitted."""
    if fn is None:

        def decorator(obj: ObjectiveFn) -> ObjectiveFn:
            OBJECTIVES.register(name, Objective(name, obj, direction), **kwargs)
            return obj

        return decorator
    OBJECTIVES.register(name, Objective(name, fn, direction), **kwargs)
    return fn


def make_objective(objective: Any) -> Objective:
    """Resolve an objective: a registered name or an :class:`Objective`."""
    if isinstance(objective, Objective):
        return objective
    return OBJECTIVES.get(objective)


def available_objectives() -> tuple:
    """Names of every registered objective."""
    return OBJECTIVES.names()


def summary_metrics(result: ScenarioResult) -> Dict[str, float]:
    """The scalar metrics of one result, as stored in ledgers and events.

    Mirrors one row of :meth:`repro.api.SweepResult.to_rows` (minus the
    identity columns), so algorithms that steer on a metric other than
    the scalar objective — ``frontier_bisect`` reads ``pocd`` and
    ``mean_cost`` — see the same numbers every other surface reports.
    """
    spec, report = result.spec, result.report
    params = spec.strategy_params
    return {
        "pocd": float(report.pocd),
        "mean_cost": float(report.mean_cost),
        "mean_machine_time": float(report.mean_machine_time),
        "mean_response_time": float(report.mean_response_time),
        "utility": float(
            report.net_utility(r_min_pocd=params.r_min_pocd, theta=params.theta)
        ),
        "num_jobs": float(report.num_jobs),
    }


register_objective(
    "utility",
    lambda result: result.report.net_utility(
        r_min_pocd=result.spec.strategy_params.r_min_pocd,
        theta=result.spec.strategy_params.theta,
    ),
    direction="max",
)
register_objective("pocd", lambda result: result.report.pocd, direction="max")
register_objective("cost", lambda result: result.report.mean_cost, direction="min")
register_objective(
    "response_time", lambda result: result.report.mean_response_time, direction="min"
)
register_objective(
    "machine_time", lambda result: result.report.mean_machine_time, direction="min"
)


def _miss_rate(result) -> float:
    """Deadline-miss rate: the cluster aggregate when present, else 1-PoCD."""
    report = result.report
    value = getattr(report, "miss_rate", None)
    if value is None:
        value = 1.0 - float(report.pocd)
    return float(value)


def _sojourn(result) -> float:
    """Mean sojourn time: cluster aggregate when present, else response time."""
    report = result.report
    value = getattr(report, "mean_sojourn_s", None)
    if value is None:
        value = report.mean_response_time
    return float(value)


# Cluster-oriented objectives.  Both also work on single-job results, so
# mixed searches (scenario base vs cluster base) share one vocabulary.
register_objective("miss_rate", _miss_rate, direction="min")
register_objective("sojourn", _sojourn, direction="min")
