"""The search driver: ask/tell algorithms executed as scenario batches.

:func:`stream_search` is to adaptive search what
:func:`repro.api.stream_specs` is to grid sweeps — the one execution
path, yielding events as they happen.  Each iteration asks the algorithm
for a batch of proposals, converts them to
:class:`~repro.api.spec.ScenarioSpec`\\ s via ``base.with_overrides``,
replays any trial the :class:`~repro.adaptive.ledger.TrialLedger`
already settled (zero re-execution on resume), runs the rest through
:func:`stream_specs` on whatever executor backend the caller chose
(inline, pool, distributed sqlite queue, or a remote HTTP service with
auth + TLS — all unchanged), tells the oriented objective scores back,
and surfaces what the algorithm pruned.

The stream speaks the ordinary :class:`~repro.api.events.SweepEvent`
vocabulary — scenario lifecycle events of each executed batch are
forwarded verbatim — plus three search-specific members:
``TrialProposed``, ``TrialPruned`` and a final ``SearchFinished``.  Stop
conditions, :class:`~repro.api.CancelToken` cancellation and Ctrl-C
partial-result semantics therefore work for searches exactly as they do
for grids.

When the search targets a distributed queue (``db=``) or a broker
service (``broker=``), trial proposals and prunes are also appended —
best effort — to the broker's event log, so ``workers status`` and the
``events_since`` RPC show the *search's* decisions next to the queue's
task lifecycle.
"""

from __future__ import annotations

import csv
import io
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.adaptive.algorithms import AlgorithmAdapter, Proposal, make_algorithm
from repro.adaptive.ledger import TrialLedger, TrialRecord
from repro.adaptive.objectives import Objective, make_objective, summary_metrics
from repro.api.events import (
    ScenarioCacheHit,
    ScenarioCompleted,
    ScenarioFailed,
    SearchFinished,
    SweepEvent,
    SweepFinished,
    SweepStarted,
    TrialProposed,
    TrialPruned,
)
from repro.api.facade import ScenarioResult
from repro.api.spec import ScenarioSpec, SpecValidationError
from repro.api.sweep import (
    CancelToken,
    ResultCache,
    StopCondition,
    _is_sweepable_spec,
    _resolve_stop,
    default_on_event,
    stream_specs,
)
from repro import telemetry

_TRIALS = telemetry.counter(
    "chronos_search_trials_total",
    "Adaptive-search trial decisions, by decision",
    labelnames=("decision",),
)


class _TrialEventLog:
    """Best-effort mirror of trial decisions into a broker's event log.

    Opens the broker lazily (sqlite path or service URL, via
    :func:`repro.distributed.targets.open_broker`) and disables itself
    permanently on the first failure — a search must never die because
    its progress mirror did.
    """

    def __init__(self, target: Optional[Union[str, Path]]):
        self._target = target
        self._broker: Any = None
        self._dead = target is None

    def log(self, kind: str, fingerprint: Optional[str], detail: Optional[str]) -> None:
        """Best-effort event write; any failure silences future writes."""
        if self._dead:
            return
        try:
            if self._broker is None:
                from repro.distributed.targets import open_broker

                self._broker = open_broker(self._target)
            self._broker.record_event(kind, fingerprint=fingerprint, detail=detail)
        except Exception:
            self._dead = True

    def close(self) -> None:
        """Release the broker connection, ignoring teardown errors."""
        if self._broker is not None:
            try:
                self._broker.close()
            except Exception:
                pass
            self._broker = None


def stream_search(
    base: ScenarioSpec,
    axes: Mapping[str, Sequence[Any]],
    *,
    algorithm: str = "random",
    objective: Union[str, Objective] = "utility",
    algorithm_params: Optional[Mapping[str, Any]] = None,
    max_trials: Optional[int] = None,
    batch: int = 8,
    seed: int = 0,
    ledger: Optional[Union[str, Path, TrialLedger]] = None,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    executor: Optional[str] = None,
    workers: Optional[int] = None,
    db: Optional[Union[str, Path]] = None,
    broker: Optional[str] = None,
    lease_timeout: Optional[float] = None,
    cancel: Optional[CancelToken] = None,
    stop: Union[None, str, StopCondition] = None,
    on_failure: str = "continue",
) -> Iterator[SweepEvent]:
    """Run an adaptive search, yielding events as they happen.

    Parameters
    ----------
    base:
        The spec every proposal's overrides are applied to.
    axes:
        Dotted-path search axes (``{"strategy_params.fixed_r": [0, 1,
        2]}``) — the same shape :meth:`repro.api.Sweep.grid` takes;
        algorithms decide how to explore them.
    algorithm:
        Registered algorithm name (``random``, ``grid``,
        ``successive_halving``, ``frontier_bisect``, or anything added
        via :func:`~repro.adaptive.algorithms.register_algorithm`).
    objective:
        Registered objective name (or an
        :class:`~repro.adaptive.objectives.Objective`); the driver
        orients values so the best trial always maximizes the score.
    algorithm_params:
        Extra keyword configuration for the algorithm factory
        (``{"eta": 2, "min_pocd": 0.99}``, ...).
    max_trials:
        Budget of resolved trials (replayed ledger trials count — the
        budget is about search progress, not compute).  ``None`` runs
        until the algorithm finishes.
    batch:
        How many proposals to request and execute per round; with a
        parallel executor this is the fan-out unit.
    seed:
        Seed for stochastic algorithms (``random``).
    ledger:
        Path of the trial ledger (or an open :class:`TrialLedger`).
        ``None`` keeps trials in memory — the search works but cannot
        resume.  A ledger written by a different algorithm, objective or
        base spec is refused.
    jobs / cache / executor / workers / db / broker / lease_timeout:
        Executor options, passed to :func:`repro.api.stream_specs`
        unchanged — a search runs anywhere a sweep does.  ``cache``
        defaults to a fresh in-memory :class:`ResultCache` so duplicate
        fingerprints across batches never re-execute.
    cancel / stop / on_failure:
        Control surface, as in :func:`stream_specs` — the stop condition
        sees every forwarded scenario event *and* the search events.
        ``on_failure`` defaults to ``"continue"`` (a failed trial is an
        infeasible data point, not a reason to abort the search).
    """
    if not _is_sweepable_spec(base):
        raise SpecValidationError(
            "base", f"expected ScenarioSpec or ClusterSpec, got {type(base).__name__}"
        )
    if not isinstance(axes, Mapping) or not axes:
        raise SpecValidationError(
            "axes", "must be a non-empty mapping of dotted paths to value lists"
        )
    if batch < 1:
        raise ValueError("batch must be a positive integer")
    if max_trials is not None and max_trials < 1:
        raise ValueError("max_trials must be a positive integer or None")
    if on_failure not in ("raise", "continue"):
        raise ValueError(f"on_failure must be 'raise' or 'continue', got {on_failure!r}")
    objective_obj = make_objective(objective)
    algo = make_algorithm(algorithm, axes, seed=seed, **dict(algorithm_params or {}))
    own_ledger = not isinstance(ledger, TrialLedger)
    book = ledger if isinstance(ledger, TrialLedger) else TrialLedger(ledger)
    try:
        book.claim_meta("algorithm", algo.name)
        book.claim_meta("objective", objective_obj.name)
        book.claim_meta("base_fingerprint", base.fingerprint())
    except Exception:
        if own_ledger:
            book.close()
        raise
    token = cancel if cancel is not None else CancelToken()
    stop_condition = _resolve_stop(stop)
    exec_opts = dict(
        jobs=jobs,
        cache=cache if cache is not None else ResultCache(),
        executor=executor,
        workers=workers,
        db=db,
        broker=broker,
        lease_timeout=lease_timeout,
        on_failure=on_failure,
    )
    return _search_stream(
        base,
        algo,
        objective_obj,
        book,
        own_ledger,
        max_trials=max_trials,
        batch=batch,
        token=token,
        stop_condition=stop_condition,
        exec_opts=exec_opts,
        log_target=broker if broker is not None else db,
    )


def _search_stream(
    base: ScenarioSpec,
    algo: AlgorithmAdapter,
    objective: Objective,
    book: TrialLedger,
    own_ledger: bool,
    *,
    max_trials: Optional[int],
    batch: int,
    token: CancelToken,
    stop_condition: Optional[StopCondition],
    exec_opts: Dict[str, Any],
    log_target: Optional[Union[str, Path]],
) -> Iterator[SweepEvent]:
    """The generator behind :func:`stream_search` (options pre-validated)."""
    started = time.perf_counter()

    def clock() -> float:
        return time.perf_counter() - started

    trials = executed = cache_hits = failures = pruned_total = 0
    stopped = False

    def note(event: SweepEvent) -> None:
        nonlocal stopped
        if stop_condition is not None and not stopped and stop_condition(event):
            stopped = True
            token.cancel()

    mirror = _TrialEventLog(log_target)
    try:
        while not token.cancelled():
            if max_trials is not None and trials >= max_trials:
                break
            if algo.finished():
                break
            want = batch if max_trials is None else min(batch, max_trials - trials)
            proposals = algo.ask(want)
            if not proposals:
                # Either finished, or waiting on trials that will never
                # arrive (cancelled mid-batch); both end the loop.
                break

            fresh: List[Tuple[Proposal, ScenarioSpec, str]] = []
            for proposal in proposals:
                record = book.get(proposal.trial_id)
                if record is not None and record.state in ("completed", "failed"):
                    # Replay from the ledger: the trial is settled, the
                    # algorithm just has not heard about it yet.
                    event: SweepEvent = TrialProposed(
                        trial_id=proposal.trial_id,
                        params=dict(proposal.params),
                        fingerprint=record.fingerprint or "",
                        algorithm=algo.name,
                        elapsed_s=clock(),
                    )
                    yield event
                    note(event)
                    if record.state == "completed":
                        algo.tell(proposal.trial_id, record.score, record.metrics)
                    else:
                        failures += 1
                        algo.tell(proposal.trial_id, None)
                    trials += 1
                    continue
                spec = base.with_overrides(proposal.params)
                fingerprint = spec.fingerprint()
                book.propose(proposal.trial_id, proposal.params)
                book.lease(proposal.trial_id, fingerprint)
                _TRIALS.labels(decision="proposed").inc()
                event = TrialProposed(
                    trial_id=proposal.trial_id,
                    params=dict(proposal.params),
                    fingerprint=fingerprint,
                    algorithm=algo.name,
                    elapsed_s=clock(),
                )
                yield event
                note(event)
                mirror.log("trial-proposed", fingerprint, detail=proposal.trial_id)
                fresh.append((proposal, spec, fingerprint))

            outcome: Dict[str, ScenarioResult] = {}
            failed_fingerprints: set = set()
            if fresh and not token.cancelled():
                inner = stream_specs(
                    [spec for _, spec, _ in fresh], cancel=token, stop=None, **exec_opts
                )
                try:
                    for event in inner:
                        if isinstance(event, SweepStarted):
                            continue  # the search, not each batch, frames the run
                        if isinstance(event, SweepFinished):
                            executed += event.executed
                            cache_hits += event.cache_hits
                            continue
                        if (
                            isinstance(event, (ScenarioCompleted, ScenarioCacheHit))
                            and event.result is not None
                        ):
                            outcome[event.fingerprint] = event.result
                        elif isinstance(event, ScenarioFailed):
                            failed_fingerprints.add(event.fingerprint)
                        yield event
                        note(event)
                finally:
                    inner.close()

            for proposal, _spec, fingerprint in fresh:
                result = outcome.get(fingerprint)
                if result is not None:
                    value = objective.value(result)
                    score = objective.orient(value)
                    metrics = summary_metrics(result)
                    book.complete(proposal.trial_id, value, score, metrics)
                    algo.tell(proposal.trial_id, score, metrics)
                    trials += 1
                elif fingerprint in failed_fingerprints:
                    failures += 1
                    book.fail(proposal.trial_id, "scenario failed")
                    algo.tell(proposal.trial_id, None)
                    trials += 1
                # else: cancelled before it ran — left leased for resume.

            for proposal, reason in algo.drain_pruned():
                book.prune(proposal.trial_id, proposal.params, reason)
                pruned_total += 1
                _TRIALS.labels(decision="pruned").inc()
                event = TrialPruned(
                    trial_id=proposal.trial_id,
                    params=dict(proposal.params),
                    reason=reason,
                    algorithm=algo.name,
                    elapsed_s=clock(),
                )
                yield event
                note(event)
                mirror.log("trial-pruned", None, detail=f"{proposal.trial_id}: {reason}")

        best = _resolve_best(algo, book)
        finished = SearchFinished(
            algorithm=algo.name,
            objective=objective.name,
            trials=trials,
            executed=executed,
            cache_hits=cache_hits,
            pruned=pruned_total,
            failures=failures,
            best_trial_id=best.trial_id if best is not None else None,
            best_objective=best.objective if best is not None else None,
            cancelled=token.cancelled() and not stopped,
            stopped=stopped,
            elapsed_s=clock(),
        )
        mirror.log(
            "search-finished",
            None,
            detail=(
                f"{algo.name}: {trials} trials, {executed} executed, "
                f"{pruned_total} pruned"
            ),
        )
        yield finished
        note(finished)
    finally:
        mirror.close()
        if own_ledger:
            book.close()


def _resolve_best(algo: AlgorithmAdapter, book: TrialLedger) -> Optional[TrialRecord]:
    """The search's answer: the algorithm's pick, else the best score."""
    best_id = algo.best_trial_id()
    if best_id is not None:
        record = book.get(best_id)
        if record is not None and record.state == "completed":
            return record
    return book.best()


@dataclass(frozen=True)
class SearchResult:
    """Outcome of one adaptive search.

    ``trials`` holds every ledger row in proposal order — completed,
    failed, pruned and (after a cancellation) still-leased ones — so the
    full decision trail survives into analysis.  ``best`` is the
    search's answer: the algorithm's own pick when it has one
    (``frontier_bisect``), otherwise the completed trial with the best
    oriented score.
    """

    algorithm: str
    objective: str
    trials: Tuple[TrialRecord, ...]
    best: Optional[TrialRecord]
    executed: int
    cache_hits: int
    pruned: int
    failures: int
    wall_time_s: float
    cancelled: bool = False
    stopped: bool = False

    def __len__(self) -> int:
        """Number of recorded trials."""
        return len(self.trials)

    def __iter__(self) -> Iterator[TrialRecord]:
        """Iterate over the recorded trials, in proposal order."""
        return iter(self.trials)

    @property
    def partial(self) -> bool:
        """Whether the search ended before its algorithm finished."""
        return self.cancelled or self.stopped

    @property
    def best_params(self) -> Optional[Dict[str, Any]]:
        """The winning override mapping, or ``None``."""
        return dict(self.best.params) if self.best is not None else None

    @property
    def best_objective(self) -> Optional[float]:
        """The winning trial's raw objective value, or ``None``."""
        return self.best.objective if self.best is not None else None

    @property
    def completed(self) -> Tuple[TrialRecord, ...]:
        """The completed trials, in proposal order."""
        return tuple(record for record in self.trials if record.state == "completed")

    #: Columns of the tabular exports, in order.
    COLUMNS = ("trial_id", "state", "objective", "score", "fingerprint", "params")

    def to_rows(self) -> List[Dict[str, Any]]:
        """One summary dict per trial (columns in :attr:`COLUMNS`)."""
        rows = []
        for record in self.trials:
            rows.append(
                {
                    "trial_id": record.trial_id,
                    "state": record.state,
                    "objective": record.objective,
                    "score": record.score,
                    "fingerprint": record.fingerprint or "",
                    "params": ", ".join(
                        f"{key}={value}" for key, value in sorted(record.params.items())
                    ),
                }
            )
        return rows

    def to_csv(self) -> str:
        """The trial rows as CSV text."""
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=list(self.COLUMNS))
        writer.writeheader()
        for row in self.to_rows():
            writer.writerow(row)
        return buffer.getvalue()

    def to_text(self, float_format: str = "{:.4g}") -> str:
        """The trial table plus a one-line summary, aligned for a terminal."""
        header = list(self.COLUMNS)
        body = []
        for row in self.to_rows():
            rendered = []
            for column in header:
                value = row[column]
                if isinstance(value, float):
                    rendered.append(float_format.format(value))
                else:
                    rendered.append("" if value is None else str(value))
            body.append(rendered)
        widths = [
            max(len(header[i]), *(len(line[i]) for line in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = ["  ".join(header[i].ljust(widths[i]) for i in range(len(header)))]
        lines.append("  ".join("-" * widths[i] for i in range(len(header))))
        for line in body:
            lines.append("  ".join(line[i].ljust(widths[i]) for i in range(len(header))))
        resolved = sum(1 for r in self.trials if r.state in ("completed", "failed"))
        summary = (
            f"{self.algorithm} search over {self.objective}: {resolved} trials "
            f"({self.executed} executed, {self.cache_hits} cache hits, "
            f"{self.pruned} pruned, {self.failures} failed), {self.wall_time_s:.1f}s"
        )
        if self.best is not None:
            summary += (
                f"\nbest: {self.best.trial_id} {self.objective}="
                + float_format.format(self.best.objective)
                + (
                    " ("
                    + ", ".join(
                        f"{key}={value}" for key, value in sorted(self.best.params.items())
                    )
                    + ")"
                    if self.best.params
                    else ""
                )
            )
        if self.partial:
            state = "stopped early" if self.stopped else "cancelled"
            summary += f" [{state}]"
        lines.append(summary)
        return "\n".join(lines)


def run_search(
    base: ScenarioSpec,
    axes: Mapping[str, Sequence[Any]],
    *,
    algorithm: str = "random",
    objective: Union[str, Objective] = "utility",
    algorithm_params: Optional[Mapping[str, Any]] = None,
    max_trials: Optional[int] = None,
    batch: int = 8,
    seed: int = 0,
    ledger: Optional[Union[str, Path, TrialLedger]] = None,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    executor: Optional[str] = None,
    workers: Optional[int] = None,
    db: Optional[Union[str, Path]] = None,
    broker: Optional[str] = None,
    lease_timeout: Optional[float] = None,
    on_event: Optional[Callable[[SweepEvent], None]] = None,
    cancel: Optional[CancelToken] = None,
    stop: Union[None, str, StopCondition] = None,
    on_failure: str = "continue",
) -> SearchResult:
    """Run an adaptive search to completion (or interruption).

    A thin consumer of :func:`stream_search`, exactly as
    :func:`repro.api.run_specs` consumes :func:`stream_specs`: it drains
    the event stream (feeding ``on_event``, falling back to the
    process-wide default callback) and assembles a :class:`SearchResult`
    from the trial ledger.  Ctrl-C returns a *partial* result — settled
    trials, current best — instead of losing paid-for work; re-running
    with the same ``ledger`` path resumes with zero re-executed
    scenarios.
    """
    if on_event is None:
        on_event = default_on_event()
    own_ledger = not isinstance(ledger, TrialLedger)
    book = ledger if isinstance(ledger, TrialLedger) else TrialLedger(ledger)
    started = time.perf_counter()
    finished: Optional[SearchFinished] = None
    executed = cache_hits = failures = pruned = 0
    interrupted = False
    try:
        stream = stream_search(
            base,
            axes,
            algorithm=algorithm,
            objective=objective,
            algorithm_params=algorithm_params,
            max_trials=max_trials,
            batch=batch,
            seed=seed,
            ledger=book,
            jobs=jobs,
            cache=cache,
            executor=executor,
            workers=workers,
            db=db,
            broker=broker,
            lease_timeout=lease_timeout,
            cancel=cancel,
            stop=stop,
            on_failure=on_failure,
        )
        try:
            for event in stream:
                if isinstance(event, ScenarioCompleted):
                    executed += 1
                elif isinstance(event, ScenarioCacheHit):
                    cache_hits += 1
                elif isinstance(event, ScenarioFailed):
                    failures += 1
                elif isinstance(event, TrialPruned):
                    pruned += 1
                elif isinstance(event, SearchFinished):
                    finished = event
                if on_event is not None:
                    on_event(event)
        except KeyboardInterrupt:
            interrupted = True
        finally:
            stream.close()

        records = tuple(book.records())
        best: Optional[TrialRecord] = None
        if finished is not None and finished.best_trial_id is not None:
            best = book.get(finished.best_trial_id)
        if best is None:
            best = book.best()
        cancelled = interrupted or bool(finished and finished.cancelled)
        if not cancelled and finished is None and cancel is not None:
            cancelled = cancel.cancelled()
        return SearchResult(
            algorithm=finished.algorithm if finished is not None else str(algorithm),
            objective=(
                finished.objective
                if finished is not None
                else (objective.name if isinstance(objective, Objective) else str(objective))
            ),
            trials=records,
            best=best,
            executed=finished.executed if finished is not None else executed,
            cache_hits=finished.cache_hits if finished is not None else cache_hits,
            pruned=finished.pruned if finished is not None else pruned,
            failures=finished.failures if finished is not None else failures,
            wall_time_s=(
                finished.elapsed_s if finished is not None else time.perf_counter() - started
            ),
            cancelled=cancelled,
            stopped=bool(finished and finished.stopped),
        )
    finally:
        if own_ledger:
            book.close()


class Search:
    """An adaptive search bound to one base spec and axis set.

    The search-shaped sibling of :class:`repro.api.Sweep`::

        search = Search(
            base,
            {"strategy_params.fixed_r": [0, 1, 2, 3]},
            algorithm="frontier_bisect",
            objective="cost",
            algorithm_params={"min_pocd": 0.99},
        )
        result = search.run(executor="distributed", workers=4)
        print(result.to_text())
    """

    def __init__(
        self,
        base: ScenarioSpec,
        axes: Mapping[str, Sequence[Any]],
        *,
        algorithm: str = "random",
        objective: Union[str, Objective] = "utility",
        algorithm_params: Optional[Mapping[str, Any]] = None,
        seed: int = 0,
    ):
        if not _is_sweepable_spec(base):
            raise SpecValidationError(
                "base", f"expected ScenarioSpec or ClusterSpec, got {type(base).__name__}"
            )
        if not isinstance(axes, Mapping) or not axes:
            raise SpecValidationError(
                "axes", "must be a non-empty mapping of dotted paths to value lists"
            )
        self._base = base
        self._axes = {key: list(values) for key, values in axes.items()}
        self._algorithm = algorithm
        self._objective = objective
        self._algorithm_params = dict(algorithm_params or {})
        self._seed = seed

    @property
    def base(self) -> ScenarioSpec:
        """The spec proposals are applied to."""
        return self._base

    @property
    def axes(self) -> Dict[str, List[Any]]:
        """The search axes (a copy)."""
        return {key: list(values) for key, values in self._axes.items()}

    @property
    def algorithm(self) -> str:
        """The configured algorithm name."""
        return self._algorithm

    def run(self, **options: Any) -> SearchResult:
        """Execute the search (see :func:`run_search` for options)."""
        return run_search(
            self._base,
            self._axes,
            algorithm=self._algorithm,
            objective=self._objective,
            algorithm_params=self._algorithm_params,
            seed=self._seed,
            **options,
        )

    def stream(self, **options: Any) -> Iterator[SweepEvent]:
        """Execute the search as an event stream (see :func:`stream_search`)."""
        return stream_search(
            self._base,
            self._axes,
            algorithm=self._algorithm,
            objective=self._objective,
            algorithm_params=self._algorithm_params,
            seed=self._seed,
            **options,
        )
