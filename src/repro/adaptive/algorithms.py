"""Ask/tell search algorithms and their registry.

The protocol is deliberately tiny.  An :class:`AlgorithmAdapter` is asked
for up to ``n`` unique :class:`Proposal`\\ s (``ask``), told the oriented
objective score of each resolved trial (``tell`` — idempotent, ``None``
for a failed trial), asked whether it has anything left (``finished``)
and drained of the trials it decided *not* to run (``drain_pruned``).
The driver in :mod:`repro.adaptive.search` owns everything else:
converting proposals to :class:`~repro.api.spec.ScenarioSpec`\\ s,
executing batches, persistence and events.

Proposal identity is content-based: ``Proposal.trial_id`` is the
truncated SHA-256 of the canonical JSON of its override mapping (the
same construction as :meth:`ScenarioSpec.fingerprint`), so two searches
— or a search killed and resumed — agree on ids without coordination.

Built-ins, registered under the same string-keyed
:class:`~repro.api.registry.Registry` idiom as strategies and
estimators:

``grid``
    Compat wrapper: proposes the full cartesian product in row-major
    order, exactly like :meth:`repro.api.Sweep.grid`.
``random``
    A seeded shuffle of the grid, optionally truncated to
    ``num_samples`` — the classic strong baseline.
``successive_halving``
    Treats one axis (default ``"seed"``) as the *resource*: every config
    is evaluated on a slice of seeds per rung, the worst half (by mean
    score, with ``min_pocd`` infeasibility trumping score) is eliminated
    at each rung boundary, and survivors graduate to more seeds.  The
    eliminated configs' remaining evaluations surface as pruned trials.
``frontier_bisect``
    The paper's Fig. 4/5 question — the cheapest configuration with
    PoCD ≥ target — answered by bisecting a single monotone axis
    (PoCD non-decreasing, cost increasing along it) in ~log₂ N
    evaluations; every value the bracket rules out is pruned.
"""

from __future__ import annotations

import hashlib
import random as _random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.api.registry import Registry
from repro.api.spec import canonical_json
from repro.api.sweep import Sweep


@dataclass(frozen=True)
class Proposal:
    """One proposed trial: a stable id plus its override mapping."""

    trial_id: str
    params: Dict[str, Any] = field(default_factory=dict)


def make_proposal(params: Mapping[str, Any]) -> Proposal:
    """Build a proposal whose id is the content hash of its params.

    The id is stable across processes and runs (canonical JSON, like
    spec fingerprints), which is what makes ``tell`` idempotent and
    resumed searches able to replay ledger rows by id.
    """
    params = dict(params)
    digest = hashlib.sha256(canonical_json(params).encode("utf-8"))
    return Proposal(trial_id=digest.hexdigest()[:16], params=params)


class AlgorithmAdapter(ABC):
    """The ask/tell contract every search algorithm implements.

    Invariants the driver relies on:

    * :meth:`ask` never repeats a trial id it already handed out;
    * :meth:`tell` is idempotent — the first report of a trial wins,
      replays (a resumed search telling ledger rows back) are no-ops;
    * :meth:`finished` answering ``True`` means no future :meth:`ask`
      will yield proposals;
    * :meth:`drain_pruned` returns each pruned trial exactly once.
    """

    #: Registry name, set by the factory for reporting.
    name: str = "algorithm"

    @abstractmethod
    def ask(self, n: int) -> List[Proposal]:
        """Up to ``n`` fresh proposals (may be empty while waiting)."""

    @abstractmethod
    def tell(
        self,
        trial_id: str,
        score: Optional[float],
        metrics: Optional[Mapping[str, float]] = None,
    ) -> None:
        """Report a trial's oriented score (``None`` = the trial failed)."""

    @abstractmethod
    def finished(self) -> bool:
        """Whether the algorithm has nothing left to propose or await."""

    def drain_pruned(self) -> List[Tuple[Proposal, str]]:
        """Trials ruled out since the last drain, with a reason each."""
        return []

    def best_trial_id(self) -> Optional[str]:
        """The algorithm's own answer, when it knows better than argmax.

        Constrained algorithms (``frontier_bisect``) optimize *subject
        to* a feasibility bound, so the trial with the best raw score is
        not necessarily their answer.  ``None`` defers to the ledger's
        best completed score.
        """
        return None


#: Algorithm name -> factory ``(axes, *, seed, **params) -> AlgorithmAdapter``.
ALGORITHMS: Registry[Callable[..., AlgorithmAdapter]] = Registry("algorithm")


def register_algorithm(name: str, factory: Optional[Callable[..., AlgorithmAdapter]] = None, **kwargs: Any):
    """Register an algorithm factory; decorator form when omitted."""
    return ALGORITHMS.register(name, factory, **kwargs)


def make_algorithm(
    name: str,
    axes: Mapping[str, Sequence[Any]],
    *,
    seed: int = 0,
    **params: Any,
) -> AlgorithmAdapter:
    """Instantiate a registered algorithm over the given search axes."""
    factory = ALGORITHMS.get(name)
    try:
        algorithm = factory(axes, seed=seed, **params)
    except TypeError as error:
        raise ValueError(f"invalid parameters for algorithm {name!r}: {error}") from error
    algorithm.name = ALGORITHMS._normalize(name)
    return algorithm


def available_algorithms() -> tuple:
    """Names of every registered algorithm."""
    return ALGORITHMS.names()


def _grid_proposals(axes: Mapping[str, Sequence[Any]]) -> List[Proposal]:
    """The full cartesian product as proposals, in row-major order."""
    return [make_proposal(override) for override in Sweep.grid_overrides(axes)]


class _ListAlgorithm(AlgorithmAdapter):
    """Shared machinery for algorithms with a precomputed proposal list."""

    def __init__(self, proposals: Sequence[Proposal]):
        self._proposals = list(proposals)
        self._cursor = 0
        self._told: Dict[str, Optional[float]] = {}

    def ask(self, n: int) -> List[Proposal]:
        """The next ``n`` proposals from the precomputed list."""
        if n < 1:
            raise ValueError("ask count must be a positive integer")
        batch = self._proposals[self._cursor : self._cursor + n]
        self._cursor += len(batch)
        return batch

    def tell(
        self,
        trial_id: str,
        score: Optional[float],
        metrics: Optional[Mapping[str, float]] = None,
    ) -> None:
        """Record a trial outcome (list algorithms only count arrivals)."""
        self._told.setdefault(trial_id, score)

    def finished(self) -> bool:
        """Whether every proposal has been issued and reported back."""
        return self._cursor >= len(self._proposals) and len(self._told) >= len(
            self._proposals
        )


@register_algorithm("grid")
class GridAlgorithm(_ListAlgorithm):
    """The compat wrapper: a grid sweep expressed as an ask/tell search."""

    def __init__(self, axes: Mapping[str, Sequence[Any]], *, seed: int = 0):
        del seed  # the grid is deterministic; accepted for interface symmetry
        super().__init__(_grid_proposals(axes))


@register_algorithm("random")
class RandomSearch(_ListAlgorithm):
    """Random search: a seeded shuffle of the grid, optionally truncated.

    ``num_samples`` bounds how many configurations are ever proposed;
    ``None`` proposes the whole (shuffled) grid, which makes ``random``
    with a ``max_trials`` budget the usual way to subsample a lattice.
    """

    def __init__(
        self,
        axes: Mapping[str, Sequence[Any]],
        *,
        seed: int = 0,
        num_samples: Optional[int] = None,
    ):
        proposals = _grid_proposals(axes)
        _random.Random(seed).shuffle(proposals)
        if num_samples is not None:
            if num_samples < 1:
                raise ValueError("num_samples must be a positive integer")
            proposals = proposals[:num_samples]
        super().__init__(proposals)


class SuccessiveHalving(AlgorithmAdapter):
    """Successive halving over seed replicas: prune configs early.

    The *configs* are the cartesian product of every axis except the
    resource axis (default ``"seed"``); the resource axis's values are
    the replicas each config can be evaluated on.  Rung ``k`` evaluates
    the surviving configs on seeds ``[c_{k-1}:c_k)`` where
    ``c_k = min(S, eta^k)``, then keeps the best ``ceil(n/eta)`` by mean
    oriented score.  A config whose intermediate PoCD falls below
    ``min_pocd`` (when set) is eliminated regardless of score — the
    "prune on intermediate PoCD" rule: a configuration that misses
    deadlines on its first seed will not be saved by seven more.

    Eliminated configs' never-run evaluations (their remaining seeds)
    are reported through :meth:`drain_pruned` — those are exactly the
    scenarios a full grid would have paid for.
    """

    def __init__(
        self,
        axes: Mapping[str, Sequence[Any]],
        *,
        seed: int = 0,
        eta: int = 2,
        resource_axis: str = "seed",
        min_pocd: Optional[float] = None,
    ):
        del seed  # rung schedule is deterministic; accepted for symmetry
        if eta < 2:
            raise ValueError("eta must be an integer >= 2")
        axes = dict(axes)
        if resource_axis in axes:
            resources = list(axes.pop(resource_axis))
        else:
            resources = [0]
        if not axes:
            raise ValueError(
                "successive_halving needs at least one config axis besides "
                f"the resource axis {resource_axis!r}"
            )
        self._eta = int(eta)
        self._resource_axis = resource_axis
        self._resources = resources
        self._min_pocd = min_pocd
        self._configs: List[Dict[str, Any]] = Sweep.grid_overrides(axes)
        self._survivors: List[int] = list(range(len(self._configs)))
        # Per config: trial_id -> oriented score (None until told).
        self._scores: List[Dict[str, Optional[float]]] = [{} for _ in self._configs]
        self._infeasible: set = set()
        self._rung = 0
        self._rung_trials: Dict[str, int] = {}  # trial_id -> config index
        self._asked: set = set()
        self._pruned: List[Tuple[Proposal, str]] = []
        self._queue: List[Proposal] = []
        self._done = False
        self._build_rung()

    def _resource_bounds(self, rung: int) -> Tuple[int, int]:
        """The half-open seed slice rung ``rung`` evaluates.

        Rung ``k`` covers ``[c_{k-1}, c_k)`` with ``c_k = min(S, eta^k)``
        (and ``c_{-1} = 0``): each graduation roughly multiplies a
        survivor's cumulative evaluations by ``eta``.
        """
        total = len(self._resources)
        low = 0 if rung == 0 else min(total, self._eta ** (rung - 1))
        high = min(total, self._eta**rung)
        return low, high

    def _config_proposal(self, config_index: int, resource: Any) -> Proposal:
        params = dict(self._configs[config_index])
        params[self._resource_axis] = resource
        return make_proposal(params)

    def _build_rung(self) -> None:
        low, high = self._resource_bounds(self._rung)
        if low >= high or not self._survivors:
            self._done = True
            return
        self._rung_trials = {}
        queue: List[Proposal] = []
        for config_index in self._survivors:
            for resource in self._resources[low:high]:
                proposal = self._config_proposal(config_index, resource)
                self._rung_trials[proposal.trial_id] = config_index
                queue.append(proposal)
        self._queue = queue
        self._asked = set()

    def _advance_if_ready(self) -> None:
        while not self._done and not self._queue and self._rung_told():
            self._eliminate()
            self._rung += 1
            self._build_rung()

    def _rung_told(self) -> bool:
        return all(
            trial_id in self._scores[config_index]
            for trial_id, config_index in self._rung_trials.items()
        )

    def _mean_score(self, config_index: int) -> float:
        scores = [
            score
            for score in self._scores[config_index].values()
            if score is not None
        ]
        return sum(scores) / len(scores) if scores else float("-inf")

    def _eliminate(self) -> None:
        """Rank the rung's survivors and cut to the next rung's quota."""
        viable = [
            index for index in self._survivors if index not in self._infeasible
        ]
        dropped_infeasible = [
            index for index in self._survivors if index in self._infeasible
        ]
        viable.sort(key=self._mean_score, reverse=True)
        keep = max(1, -(-len(self._survivors) // self._eta))  # ceil division
        keep = min(keep, len(viable)) if viable else 0
        kept, cut = viable[:keep], viable[keep:]
        _, high = self._resource_bounds(self._rung)
        for config_index in cut + dropped_infeasible:
            reason = (
                f"pocd below {self._min_pocd} at rung {self._rung}"
                if config_index in self._infeasible
                else f"eliminated at rung {self._rung} "
                f"(rank > {keep} of {len(self._survivors)})"
            )
            for resource in self._resources[high:]:
                proposal = self._config_proposal(config_index, resource)
                self._pruned.append((proposal, reason))
        self._survivors = kept if kept else viable[:1] or self._survivors[:1]
        if not viable:
            # Every survivor infeasible: nothing is worth more seeds.
            self._done = True

    def ask(self, n: int) -> List[Proposal]:
        """Up to ``n`` proposals from the current rung's queue."""
        if n < 1:
            raise ValueError("ask count must be a positive integer")
        self._advance_if_ready()
        batch: List[Proposal] = []
        while self._queue and len(batch) < n:
            proposal = self._queue.pop(0)
            self._asked.add(proposal.trial_id)
            batch.append(proposal)
        return batch

    def tell(
        self,
        trial_id: str,
        score: Optional[float],
        metrics: Optional[Mapping[str, float]] = None,
    ) -> None:
        """Record a rung trial's score and advance the rung when complete."""
        config_index = self._rung_trials.get(trial_id)
        if config_index is None:
            return  # a replay from a previous rung; already counted
        if trial_id in self._scores[config_index]:
            return  # idempotent: first report wins
        self._scores[config_index][trial_id] = score
        if score is None:
            self._infeasible.add(config_index)
        elif self._min_pocd is not None:
            pocd = (metrics or {}).get("pocd")
            if pocd is not None and pocd < self._min_pocd:
                self._infeasible.add(config_index)
        self._advance_if_ready()

    def finished(self) -> bool:
        """Whether the final rung has completed and nothing is queued."""
        self._advance_if_ready()
        return self._done and not self._queue

    def drain_pruned(self) -> List[Tuple[Proposal, str]]:
        """Pop the accumulated (proposal, reason) pruning decisions."""
        pruned, self._pruned = self._pruned, []
        return pruned

    def best_trial_id(self) -> Optional[str]:
        """``None``: the ledger's best completed score is halving's answer."""
        return None


register_algorithm("successive_halving", SuccessiveHalving)


class FrontierBisect(AlgorithmAdapter):
    """Bisect a monotone axis for the cheapest PoCD-feasible value.

    Chronos's Fig. 4/5 question: along an axis where PoCD is
    non-decreasing and cost is increasing (e.g. the fixed extra-attempt
    budget ``strategy_params.fixed_r``), find the smallest value with
    ``pocd >= min_pocd``.  Exactly one axis may have multiple values;
    the others are folded into every proposal as constants.  The bracket
    converges in ~log₂ N evaluations; every value it rules out — too
    small to be feasible, or larger than a known-feasible point — is
    reported as pruned.

    A failed trial (or one whose metrics lack ``pocd``) is treated as
    infeasible, which keeps the bracket sound under
    ``on_failure="continue"``.
    """

    def __init__(
        self,
        axes: Mapping[str, Sequence[Any]],
        *,
        seed: int = 0,
        min_pocd: float = 0.99,
        axis: Optional[str] = None,
    ):
        del seed  # bisection is deterministic; accepted for symmetry
        axes = dict(axes)
        multi = [key for key, values in axes.items() if len(list(values)) > 1]
        if axis is None:
            if len(multi) != 1:
                raise ValueError(
                    "frontier_bisect needs exactly one multi-valued axis "
                    f"(got {len(multi)}: {', '.join(multi) or '<none>'}); "
                    "pass axis=<dotted path> to choose"
                )
            axis = multi[0]
        if axis not in axes:
            raise ValueError(f"axis {axis!r} is not one of the search axes")
        self._axis = axis
        self._values = list(axes.pop(axis))
        if not self._values:
            raise ValueError(f"axis {axis!r} must have at least one value")
        self._constants: Dict[str, Any] = {}
        for key, values in axes.items():
            values = list(values)
            if len(values) != 1:
                raise ValueError(
                    f"frontier_bisect axis {key!r} must be single-valued "
                    f"(the search axis is {axis!r})"
                )
            self._constants[key] = values[0]
        self._min_pocd = float(min_pocd)
        self._lo = 0
        self._hi = len(self._values) - 1
        self._best_feasible: Optional[int] = None
        self._feasible: Dict[int, bool] = {}
        self._outstanding: Optional[Tuple[str, int]] = None
        self._pruned: List[Tuple[Proposal, str]] = []
        self._trials: Dict[str, int] = {}

    def _proposal_for(self, value_index: int) -> Proposal:
        params = dict(self._constants)
        params[self._axis] = self._values[value_index]
        return make_proposal(params)

    def ask(self, n: int) -> List[Proposal]:
        """The bracket's midpoint trial (bisection asks one at a time)."""
        if n < 1:
            raise ValueError("ask count must be a positive integer")
        if self._outstanding is not None or self.finished():
            return []
        mid = (self._lo + self._hi) // 2
        proposal = self._proposal_for(mid)
        self._outstanding = (proposal.trial_id, mid)
        self._trials[proposal.trial_id] = mid
        return [proposal]

    def tell(
        self,
        trial_id: str,
        score: Optional[float],
        metrics: Optional[Mapping[str, float]] = None,
    ) -> None:
        """Fold the midpoint's feasibility into the bracket and shrink it."""
        if self._outstanding is None or self._outstanding[0] != trial_id:
            return  # idempotent replay, or a trial from another bracket
        _, index = self._outstanding
        self._outstanding = None
        pocd = (metrics or {}).get("pocd")
        feasible = score is not None and pocd is not None and pocd >= self._min_pocd
        self._feasible[index] = feasible
        if feasible:
            # Everything above `index` is at least as feasible but costs
            # more: the bracket discards it without evaluation.
            for ruled_out in range(index + 1, self._hi + 1):
                if ruled_out not in self._feasible and (
                    self._best_feasible is None or ruled_out != self._best_feasible
                ):
                    self._pruned.append(
                        (
                            self._proposal_for(ruled_out),
                            f"{self._axis}={self._values[ruled_out]} dominated by "
                            f"feasible {self._axis}={self._values[index]}",
                        )
                    )
            self._best_feasible = index
            self._hi = index - 1
        else:
            # PoCD is monotone along the axis: everything below `index`
            # is at most as feasible and can be discarded.
            for ruled_out in range(self._lo, index):
                if ruled_out not in self._feasible:
                    self._pruned.append(
                        (
                            self._proposal_for(ruled_out),
                            f"{self._axis}={self._values[ruled_out]} infeasible by "
                            f"monotonicity ({self._axis}={self._values[index]} has "
                            f"pocd < {self._min_pocd})",
                        )
                    )
            self._lo = index + 1

    def finished(self) -> bool:
        """Whether the bracket is empty and no trial is outstanding."""
        return self._outstanding is None and self._lo > self._hi

    def drain_pruned(self) -> List[Tuple[Proposal, str]]:
        """Pop the accumulated (proposal, reason) pruning decisions."""
        pruned, self._pruned = self._pruned, []
        return pruned

    def best_trial_id(self) -> Optional[str]:
        """Trial id of the cheapest feasible value found, if any."""
        if self._best_feasible is None:
            return None
        return self._proposal_for(self._best_feasible).trial_id


register_algorithm("frontier_bisect", FrontierBisect)
