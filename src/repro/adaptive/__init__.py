"""Adaptive search over scenario space: ask/tell algorithms, not just grids.

Chronos is an optimization paper — "what is the cheapest speculation
configuration that still meets the PoCD target?" — yet a grid sweep
answers it by paying for every corner of the lattice.  This package adds
the missing layer: a small ask/tell protocol
(:class:`~repro.adaptive.algorithms.AlgorithmAdapter`) in which an
algorithm proposes trial configurations, a driver
(:func:`~repro.adaptive.search.run_search`) executes them as ordinary
:class:`~repro.api.spec.ScenarioSpec` batches on any executor backend,
and objective values flow back to steer the next proposals.

The pieces:

* :mod:`~repro.adaptive.algorithms` — the :class:`AlgorithmAdapter` ABC,
  a string-keyed registry (:func:`register_algorithm`, mirroring the
  strategy/estimator registries) and four built-ins: ``random``,
  ``grid`` (compat wrapper), ``successive_halving`` (prune configs on
  intermediate PoCD/score across seed rungs) and ``frontier_bisect``
  (minimize cost subject to PoCD ≥ target — the paper's Fig. 4/5
  question, answered in ~log₂ N scenarios).
* :mod:`~repro.adaptive.ledger` — a persisted :class:`TrialLedger`
  (sqlite, same WAL idiom as the distributed broker) recording every
  trial's PENDING → LEASED → COMPLETED/FAILED/PRUNED lifecycle, so a
  killed search resumes with zero re-executed trials.
* :mod:`~repro.adaptive.objectives` — named objective functions
  (``utility``, ``cost``, ``pocd``, ...) with a max/min direction, plus
  their own registry (:func:`register_objective`).
* :mod:`~repro.adaptive.search` — the driver: :func:`stream_search`
  yields the same :class:`~repro.api.events.SweepEvent` stream as a grid
  sweep (plus ``TrialProposed``/``TrialPruned``/``SearchFinished``),
  :func:`run_search` blocks and returns a :class:`SearchResult`, and
  :class:`Search` mirrors :class:`~repro.api.Sweep`.

Everything here is re-exported from :mod:`repro.api`, and the CLI grows
``chronos-experiments search --algorithm ... --objective ...``.
"""

from repro.adaptive.algorithms import (
    ALGORITHMS,
    AlgorithmAdapter,
    FrontierBisect,
    GridAlgorithm,
    Proposal,
    RandomSearch,
    SuccessiveHalving,
    available_algorithms,
    make_algorithm,
    make_proposal,
    register_algorithm,
)
from repro.adaptive.ledger import TRIAL_STATES, TrialLedger, TrialRecord
from repro.adaptive.objectives import (
    OBJECTIVES,
    Objective,
    available_objectives,
    make_objective,
    register_objective,
    summary_metrics,
)
from repro.adaptive.search import Search, SearchResult, run_search, stream_search

__all__ = [
    "ALGORITHMS",
    "AlgorithmAdapter",
    "FrontierBisect",
    "GridAlgorithm",
    "OBJECTIVES",
    "Objective",
    "Proposal",
    "RandomSearch",
    "Search",
    "SearchResult",
    "SuccessiveHalving",
    "TRIAL_STATES",
    "TrialLedger",
    "TrialRecord",
    "available_algorithms",
    "available_objectives",
    "make_algorithm",
    "make_objective",
    "make_proposal",
    "register_algorithm",
    "register_objective",
    "run_search",
    "stream_search",
    "summary_metrics",
]
