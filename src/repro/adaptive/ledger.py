"""The trial ledger: durable ask/tell state for resumable searches.

A search is only as crash-safe as its bookkeeping.  The
:class:`TrialLedger` records every trial an algorithm has proposed —
its parameters, the scenario fingerprint it resolved to, and its
lifecycle state — in one sqlite file opened with the same WAL idiom as
the distributed queue (:func:`repro.distributed.store.connect`): WAL
journal, generous busy timeout, explicit ``BEGIN IMMEDIATE`` where
read-then-write atomicity matters.  Kill the driver at any point and a
re-run replays completed trials from the ledger (telling their recorded
objectives back to the algorithm) instead of re-executing them; combined
with the fingerprint-keyed result store this makes a resumed search
execute **zero** repeated scenarios.

Trial lifecycle::

    pending --lease--> leased --complete--> completed
                          \\------fail-----> failed
    (never executed) ------prune----------> pruned

The ledger deliberately has its own schema — ``trials`` plus a
``search_meta`` key/value table — rather than piggybacking on the queue
database: a search can run against any executor (inline, pool,
distributed, remote HTTP service) and its ledger must not depend on one
backend's storage existing.  A ``search_meta`` mismatch (resuming a
ledger with a different algorithm, objective or base spec) is refused
loudly instead of silently mixing two searches' trials.
"""

from __future__ import annotations

import json
import sqlite3
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.distributed.store import BUSY_TIMEOUT_MS, normalize_db_path

#: Trial states, in roughly the order of the lifecycle.
TRIAL_STATES = ("pending", "leased", "completed", "failed", "pruned")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS trials (
    trial_id    TEXT PRIMARY KEY,
    params      TEXT NOT NULL,
    fingerprint TEXT,
    state       TEXT NOT NULL DEFAULT 'pending',
    objective   REAL,
    score       REAL,
    metrics     TEXT,
    detail      TEXT,
    proposed_at REAL NOT NULL,
    updated_at  REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_trials_state ON trials(state, proposed_at);
CREATE TABLE IF NOT EXISTS search_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
"""


@dataclass(frozen=True)
class TrialRecord:
    """A read-only snapshot of one ledger row."""

    trial_id: str
    params: Dict[str, Any]
    fingerprint: Optional[str]
    state: str
    objective: Optional[float]
    score: Optional[float]
    metrics: Optional[Dict[str, Any]]
    detail: Optional[str]
    proposed_at: float
    updated_at: float


def _row_to_record(row: sqlite3.Row) -> TrialRecord:
    metrics = None
    if row["metrics"]:
        try:
            metrics = json.loads(row["metrics"])
        except ValueError:
            metrics = None
    try:
        params = json.loads(row["params"])
    except ValueError:
        params = {}
    return TrialRecord(
        trial_id=row["trial_id"],
        params=params if isinstance(params, dict) else {},
        fingerprint=row["fingerprint"],
        state=row["state"],
        objective=row["objective"],
        score=row["score"],
        metrics=metrics if isinstance(metrics, dict) else None,
        detail=row["detail"],
        proposed_at=row["proposed_at"],
        updated_at=row["updated_at"],
    )


class TrialLedger:
    """Durable trial bookkeeping for one adaptive search.

    ``path=None`` keeps the ledger in memory — the search still works,
    it just is not resumable.  Every mutation is idempotent, so replays
    after a crash (or two shards racing on a shared ledger file) never
    corrupt state: a completed trial stays completed no matter how many
    times its completion is reported.
    """

    def __init__(self, path: Optional[Union[str, Path]] = None):
        self._path = normalize_db_path(path) if path is not None else None
        if self._path is not None and self._path.parent != Path("."):
            self._path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(
            str(self._path) if self._path is not None else ":memory:",
            timeout=BUSY_TIMEOUT_MS / 1000.0,
            isolation_level=None,
            check_same_thread=False,
        )
        self._conn.row_factory = sqlite3.Row
        self._conn.execute(f"PRAGMA busy_timeout = {BUSY_TIMEOUT_MS}")
        if self._path is not None:
            self._conn.execute("PRAGMA journal_mode = WAL")
            self._conn.execute("PRAGMA synchronous = NORMAL")
        self._conn.executescript(_SCHEMA)
        self._conn.commit()

    @property
    def path(self) -> Optional[Path]:
        """Location of the backing database file (``None`` = in memory)."""
        return self._path

    # ------------------------------------------------------------------
    # Search identity
    # ------------------------------------------------------------------
    def set_meta(self, key: str, value: str) -> None:
        """Record one search identity fact (algorithm, objective, base)."""
        with self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO search_meta (key, value) VALUES (?, ?)",
                (str(key), str(value)),
            )

    def get_meta(self, key: str) -> Optional[str]:
        """A previously recorded identity fact, or ``None``."""
        row = self._conn.execute(
            "SELECT value FROM search_meta WHERE key = ?", (str(key),)
        ).fetchone()
        return row["value"] if row is not None else None

    def claim_meta(self, key: str, value: str) -> None:
        """Set ``key`` to ``value``, refusing a conflicting existing value.

        This is the resume guard: pointing a ``frontier_bisect`` run at a
        ledger written by ``successive_halving`` (or at a different base
        spec) raises instead of silently interleaving two searches.
        """
        existing = self.get_meta(key)
        if existing is not None and existing != str(value):
            raise ValueError(
                f"ledger {self._path or ':memory:'} was created with {key}="
                f"{existing!r}; refusing to resume it with {key}={value!r}"
            )
        if existing is None:
            self.set_meta(key, value)

    # ------------------------------------------------------------------
    # Lifecycle transitions
    # ------------------------------------------------------------------
    def propose(self, trial_id: str, params: Mapping[str, Any]) -> bool:
        """Record a proposed trial; returns ``False`` if already known."""
        now = time.time()
        with self._conn:
            cursor = self._conn.execute(
                "INSERT OR IGNORE INTO trials (trial_id, params, proposed_at, updated_at) "
                "VALUES (?, ?, ?, ?)",
                (trial_id, json.dumps(dict(params), sort_keys=True), now, now),
            )
        return bool(cursor.rowcount)

    def lease(self, trial_id: str, fingerprint: str) -> None:
        """Mark a trial as handed to an executor, pinning its fingerprint.

        Only ``pending``/``leased`` rows move — a settled trial cannot be
        dragged back into execution by a replayed lease.
        """
        now = time.time()
        with self._conn:
            self._conn.execute(
                "UPDATE trials SET state = 'leased', fingerprint = ?, updated_at = ? "
                "WHERE trial_id = ? AND state IN ('pending', 'leased')",
                (fingerprint, now, trial_id),
            )

    def complete(
        self,
        trial_id: str,
        objective: Optional[float],
        score: Optional[float],
        metrics: Optional[Mapping[str, Any]] = None,
    ) -> None:
        """Record a trial's objective (idempotent; completed rows win)."""
        now = time.time()
        with self._conn:
            self._conn.execute("BEGIN IMMEDIATE")
            self._conn.execute(
                "UPDATE trials SET state = 'completed', objective = ?, score = ?, "
                "metrics = ?, detail = NULL, updated_at = ? "
                "WHERE trial_id = ? AND state != 'completed'",
                (
                    objective,
                    score,
                    json.dumps(dict(metrics)) if metrics is not None else None,
                    now,
                    trial_id,
                ),
            )

    def fail(self, trial_id: str, detail: str = "") -> None:
        """Mark a trial failed (its scenario raised); completed rows win."""
        now = time.time()
        with self._conn:
            self._conn.execute(
                "UPDATE trials SET state = 'failed', detail = ?, updated_at = ? "
                "WHERE trial_id = ? AND state NOT IN ('completed', 'failed')",
                (str(detail), now, trial_id),
            )

    def prune(self, trial_id: str, params: Mapping[str, Any], reason: str = "") -> None:
        """Record a trial the algorithm ruled out without executing it.

        Pruned trials were often never proposed (that is the saving), so
        this is an upsert; a trial that already ran keeps its state.
        """
        now = time.time()
        with self._conn:
            self._conn.execute("BEGIN IMMEDIATE")
            cursor = self._conn.execute(
                "INSERT OR IGNORE INTO trials "
                "(trial_id, params, state, detail, proposed_at, updated_at) "
                "VALUES (?, ?, 'pruned', ?, ?, ?)",
                (trial_id, json.dumps(dict(params), sort_keys=True), str(reason), now, now),
            )
            if not cursor.rowcount:
                self._conn.execute(
                    "UPDATE trials SET state = 'pruned', detail = ?, updated_at = ? "
                    "WHERE trial_id = ? AND state IN ('pending', 'leased')",
                    (str(reason), now, trial_id),
                )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def get(self, trial_id: str) -> Optional[TrialRecord]:
        """A snapshot of one trial, or ``None`` if never recorded."""
        row = self._conn.execute(
            "SELECT * FROM trials WHERE trial_id = ?", (trial_id,)
        ).fetchone()
        return _row_to_record(row) if row is not None else None

    def records(self, state: Optional[str] = None) -> List[TrialRecord]:
        """All trials in proposal order, optionally filtered by state."""
        query = "SELECT * FROM trials"
        args: tuple = ()
        if state is not None:
            if state not in TRIAL_STATES:
                raise ValueError(
                    f"unknown trial state {state!r} (available: {', '.join(TRIAL_STATES)})"
                )
            query += " WHERE state = ?"
            args = (state,)
        query += " ORDER BY proposed_at, trial_id"
        return [_row_to_record(row) for row in self._conn.execute(query, args).fetchall()]

    def counts(self) -> Dict[str, int]:
        """Trial counts by state (all states present, zero-filled)."""
        rows = self._conn.execute(
            "SELECT state, COUNT(*) AS n FROM trials GROUP BY state"
        ).fetchall()
        counts = {state: 0 for state in TRIAL_STATES}
        for row in rows:
            counts[row["state"]] = int(row["n"])
        return counts

    def best(self) -> Optional[TrialRecord]:
        """The completed trial with the highest oriented score, if any."""
        row = self._conn.execute(
            "SELECT * FROM trials WHERE state = 'completed' AND score IS NOT NULL "
            "ORDER BY score DESC, proposed_at, trial_id LIMIT 1"
        ).fetchone()
        return _row_to_record(row) if row is not None else None

    def executed_fingerprints(self) -> List[str]:
        """Fingerprints of completed trials (the resumability invariant)."""
        rows = self._conn.execute(
            "SELECT fingerprint FROM trials "
            "WHERE state = 'completed' AND fingerprint IS NOT NULL "
            "ORDER BY proposed_at, trial_id"
        ).fetchall()
        return [row["fingerprint"] for row in rows]

    def close(self) -> None:
        """Close the underlying connection (further calls will fail)."""
        self._conn.close()

    def __enter__(self) -> "TrialLedger":
        """Context-manager entry: the ledger itself."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit: close the connection."""
        self.close()
