"""Multi-host sweep service: HTTP broker front-end and remote-worker clients.

PR 2's distributed executor shares work through a sqlite file, which
binds every worker to one filesystem.  This package puts a stdlib-only
HTTP server in front of that database and gives every distributed piece
an HTTP twin, so fleets on other hosts need nothing but a URL:

- :func:`make_server` / :func:`serve` — a
  :class:`~http.server.ThreadingHTTPServer` exposing every
  :class:`~repro.distributed.Broker` and
  :class:`~repro.distributed.SqliteResultStore` operation as
  JSON-over-HTTP (``POST /rpc``, plus ``GET /healthz`` and
  ``GET /status``).  The server is the only process touching sqlite.
- :class:`HttpBroker` / :class:`HttpResultStore` — clients implementing
  the same interfaces, so :class:`~repro.distributed.Worker`,
  :class:`~repro.distributed.WorkerPool` and ``run_specs(...,
  executor="distributed")`` run unchanged against a remote URL.

One deployment, three commands::

    chronos-experiments serve --db queue.sqlite --port 8176        # host A
    chronos-experiments workers start --broker http://a:8176       # hosts B, C
    chronos-experiments sweep --spec sweep.json --broker http://a:8176

Crossing an untrusted network?  Add a bearer token and a certificate
(:mod:`repro.service.security`) and nothing else changes::

    chronos-experiments serve --db queue.sqlite --token "$CHRONOS_TOKEN" \
        --certfile cert.pem --keyfile key.pem                      # host A
    CHRONOS_TOKEN=… CHRONOS_CAFILE=cert.pem \
        chronos-experiments workers start --broker https://a:8176  # hosts B, C

or in code::

    from repro.api import Sweep
    outcome = sweep.run(executor="distributed", broker="http://a:8176")

Determinism makes the transport invisible: fingerprints and result
payloads are byte-identical whether a sweep ran inline, on one machine,
or across a fleet of hosts.
"""

from repro.service.client import HttpBroker, HttpResultStore, fetch_metrics, rpc_call
from repro.service.protocol import (
    HEALTH_PATH,
    METRICS_CONTENT_TYPE,
    METRICS_PATH,
    PROTOCOL_VERSION,
    RPC_PATH,
    STATUS_PATH,
    ServiceAuthError,
    ServiceError,
)
from repro.service.security import (
    CAFILE_ENV,
    TOKEN_ENV,
    VERIFY_ENV,
    Credentials,
    client_ssl_context,
    server_ssl_context,
    token_matches,
)
from repro.service.server import (
    BrokerService,
    ServiceHTTPServer,
    ServiceRequestHandler,
    UnknownMethodError,
    make_server,
    serve,
)

__all__ = [
    # server
    "BrokerService",
    "ServiceHTTPServer",
    "ServiceRequestHandler",
    "UnknownMethodError",
    "make_server",
    "serve",
    # clients
    "HttpBroker",
    "HttpResultStore",
    "rpc_call",
    "fetch_metrics",
    # protocol
    "ServiceError",
    "ServiceAuthError",
    "RPC_PATH",
    "HEALTH_PATH",
    "STATUS_PATH",
    "METRICS_PATH",
    "METRICS_CONTENT_TYPE",
    "PROTOCOL_VERSION",
    # security
    "Credentials",
    "token_matches",
    "client_ssl_context",
    "server_ssl_context",
    "TOKEN_ENV",
    "CAFILE_ENV",
    "VERIFY_ENV",
]
