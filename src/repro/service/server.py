"""The HTTP broker front-end: one process owning the queue database.

:class:`BrokerService` wraps one :class:`~repro.distributed.Broker` and
one :class:`~repro.distributed.SqliteResultStore` behind a method table;
:func:`make_server` mounts it on a stdlib
:class:`~http.server.ThreadingHTTPServer` speaking the JSON protocol of
:mod:`repro.service.protocol`.  The server is the only process that
touches the sqlite file, which is what makes the queue NFS-safe and
multi-host: remote fleets and sweep drivers talk HTTP and never share a
filesystem.

Broker connections are not thread safe, so the service serializes every
operation under one lock.  That is not the bottleneck it sounds like:
each operation is a sub-millisecond sqlite transaction, the server
threads only exist to overlap network I/O, and batch claims
(``claim_many``) amortize the round trip for short scenarios.

The transport hardens on demand: ``token=`` requires ``Authorization:
Bearer …`` on every RPC, ``/status`` and ``/metrics`` request (compared
in constant time; ``/healthz`` stays open for load balancers), and ``certfile=``/
``keyfile=`` wrap the listening socket in an :class:`ssl.SSLContext` so
the queue can cross untrusted networks — see
:mod:`repro.service.security`.

Run it from the CLI (``chronos-experiments serve --db queue.sqlite
--port 8176 --token …``) or embed it::

    server = make_server("queue.sqlite", port=0)   # port 0: pick a free one
    url = f"http://127.0.0.1:{server.server_address[1]}"
    threading.Thread(target=server.serve_forever, daemon=True).start()
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from repro import telemetry
from repro.distributed.broker import Broker
from repro.distributed.leases import LeasePolicy
from repro.distributed.store import SqliteResultStore, normalize_db_path
from repro.service.protocol import (
    HEALTH_PATH,
    METRICS_CONTENT_TYPE,
    METRICS_PATH,
    PROTOCOL_VERSION,
    RPC_PATH,
    STATUS_PATH,
    policy_to_wire,
    record_to_wire,
    task_to_wire,
)
from repro.service.security import bearer_token, server_ssl_context, token_matches


class UnknownMethodError(KeyError):
    """The RPC body named a method the service does not export."""


class BrokerService:
    """Every queue and result-store operation, callable by wire name.

    One instance per served database.  All methods take and return
    JSON-native values only; the lock serializes access to the single
    broker/store connection pair (sqlite brokers are not thread safe,
    and ``ThreadingHTTPServer`` handles each request on its own thread).
    """

    def __init__(self, db: Union[str, Path], policy: Optional[LeasePolicy] = None):
        self._db = normalize_db_path(db)
        self._policy = policy if policy is not None else LeasePolicy()
        self._lock = threading.Lock()
        self._broker = Broker(self._db, policy=self._policy)
        self._store = SqliteResultStore(self._db)
        broker, store = self._broker, self._store
        self._methods: Dict[str, Callable[..., Any]] = {
            # producer side
            "enqueue": broker.enqueue,
            "drain": broker.drain,
            "is_draining": broker.is_draining,
            # consumer side
            "claim": lambda worker_id: task_to_wire(broker.claim(worker_id)),
            "claim_many": lambda worker_id, limit: [
                task_to_wire(task) for task in broker.claim_many(worker_id, int(limit))
            ],
            "heartbeat": broker.heartbeat,
            "complete": broker.complete,
            "fail": broker.fail,
            "requeue_expired": lambda now=None, dry_run=False: list(
                broker.requeue_expired(
                    None if now is None else float(now), dry_run=bool(dry_run)
                )
            ),
            "release_worker": lambda worker_id: list(broker.release_worker(worker_id)),
            "release_pending": lambda fingerprints: broker.release_pending(
                [str(fingerprint) for fingerprint in fingerprints]
            ),
            # worker liveness (remote pid travels with the registration)
            "register_worker": broker.register_worker,
            "touch_worker": broker.touch_worker,
            # introspection
            "counts": broker.counts,
            "settled": broker.settled,
            "task": lambda fingerprint: record_to_wire(broker.task(fingerprint)),
            "tasks": lambda status=None: [
                record_to_wire(record) for record in broker.tasks(status)
            ],
            "failed_payloads": lambda: [list(item) for item in broker.failed_payloads()],
            "workers": broker.workers,
            "leased": broker.leased,
            "stats": broker.stats,
            "telemetry_summary": lambda window_s=300.0: broker.telemetry_summary(
                float(window_s)
            ),
            "policy": lambda: policy_to_wire(self._policy),
            # telemetry (JSON snapshot of the same registry /metrics renders)
            "metrics": telemetry.REGISTRY.snapshot,
            # event log (live sweep progress over the wire)
            "events_since": lambda seq=0, limit=500: broker.events_since(
                int(seq), int(limit)
            ),
            "last_event_seq": broker.last_event_seq,
            "record_event": lambda kind, fingerprint=None, worker_id=None, detail=None: (
                broker.record_event(
                    str(kind), fingerprint=fingerprint, worker_id=worker_id, detail=detail
                )
            ),
            "events_for": lambda fingerprint, limit=1000: broker.events_for(
                str(fingerprint), int(limit)
            ),
            "done_watermark": broker.done_watermark,
            "prune_events": lambda before_seq=None: broker.prune_events(
                None if before_seq is None else int(before_seq)
            ),
            # result store
            "result_get": store.get_payload,
            "result_put": lambda payload, worker_id=None: store.put_payload(
                payload, worker_id=worker_id
            ),
            "result_fingerprints": lambda: sorted(store.fingerprints()),
            "result_len": lambda: len(store),
        }

    @property
    def db(self) -> Path:
        """The served queue database."""
        return self._db

    @property
    def policy(self) -> LeasePolicy:
        """The lease policy claims are granted under."""
        return self._policy

    def methods(self) -> List[str]:
        """Names of the exported RPC methods."""
        return sorted(self._methods)

    def call(self, method: str, params: Optional[Dict[str, Any]] = None) -> Any:
        """Invoke one method by wire name under the service lock."""
        handler = self._methods.get(method)
        if handler is None:
            raise UnknownMethodError(method)
        with self._lock:
            return handler(**(params or {}))

    def close(self) -> None:
        """Release the underlying database connections."""
        with self._lock:
            self._broker.close()
            self._store.close()


class ServiceHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server carrying its :class:`BrokerService`.

    ``token`` (when set) is the bearer token every RPC and status
    request must present; ``tls`` records whether the listening socket
    was wrapped by :func:`make_server` (reported by ``/healthz`` so
    clients and health checks can tell the schemes apart).
    """

    daemon_threads = True
    #: Tolerate a burst of fleet connections beyond the default backlog.
    request_queue_size = 32

    def __init__(self, address, handler, service: BrokerService, token: Optional[str] = None):
        self.service = service
        self.token = token
        self.tls = False
        super().__init__(address, handler)

    def server_close(self) -> None:  # releases sqlite handles with the socket
        super().server_close()
        self.service.close()


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """Dispatch ``POST /rpc`` bodies to the service; quiet by default."""

    server_version = "chronos-sweep-service/1"
    protocol_version = "HTTP/1.1"  # keep-alive; responses carry Content-Length

    def _authorized(self) -> bool:
        """Check the request's bearer token against the server's.

        Uses the constant-time comparison of
        :func:`repro.service.security.token_matches`, so the rejection
        path leaks nothing about how close a guess came.  Servers
        without a configured token accept everything (PR 3 behaviour).
        """
        return token_matches(self.server.token, bearer_token(self.headers))

    def _reject_unauthorized(self) -> None:
        """Answer 401 with the standard challenge header.

        The unread request body is drained first: under HTTP/1.1
        keep-alive, leftover body bytes would be parsed as the *next*
        request line, desynchronizing the connection.  Oversized bodies
        are not worth reading for a rejected request — drop the
        connection instead.
        """
        try:
            length = int(self.headers.get("Content-Length", 0))
        except (TypeError, ValueError):
            length = 0
        if 0 < length <= (1 << 20):
            self.rfile.read(length)
        elif length != 0:
            self.close_connection = True
        data = json.dumps(
            {"error": "authentication required: send 'Authorization: Bearer <token>'"}
        ).encode("utf-8")
        try:
            self.send_response(401)
            self.send_header("WWW-Authenticate", 'Bearer realm="chronos-sweep-service"')
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)
        except (BrokenPipeError, ConnectionResetError):
            pass

    def do_POST(self) -> None:  # noqa: N802 (stdlib handler naming)
        if self.path != RPC_PATH:
            self._send_json(404, {"error": f"no such endpoint: {self.path}"})
            return
        if not self._authorized():
            self._reject_unauthorized()
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
            body = json.loads(self.rfile.read(length).decode("utf-8"))
            method = body["method"]
            params = body.get("params") or {}
            if not isinstance(params, dict):
                raise TypeError("params must be an object")
        except Exception as error:
            self._send_json(400, {"error": f"malformed RPC request: {error}"})
            return
        try:
            result = self.server.service.call(method, params)
        except UnknownMethodError:
            self._send_json(
                400,
                {
                    "error": f"unknown method {method!r}",
                    "available": self.server.service.methods(),
                },
            )
        except (TypeError, ValueError) as error:
            self._send_json(400, {"error": f"{type(error).__name__}: {error}"})
        except Exception as error:  # surface server faults, don't kill the thread
            self._send_json(500, {"error": f"{type(error).__name__}: {error}"})
        else:
            self._send_json(200, {"result": result})

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler naming)
        if self.path == HEALTH_PATH:
            # Liveness stays token-free: load balancers, CI wait loops
            # and `curl /healthz` need no secret to ask "are you up?".
            self._send_json(
                200,
                {
                    "ok": True,
                    "protocol": PROTOCOL_VERSION,
                    "db": str(self.server.service.db),
                    "auth": self.server.token is not None,
                    "tls": self.server.tls,
                },
            )
        elif self.path == STATUS_PATH:
            if not self._authorized():
                self._reject_unauthorized()
                return
            try:
                self._send_json(200, self.server.service.call("stats"))
            except Exception as error:
                self._send_json(500, {"error": f"{type(error).__name__}: {error}"})
        elif self.path == METRICS_PATH:
            # Same trust boundary as /status: queue depths, failure counts
            # and worker throughput are operational intelligence.
            if not self._authorized():
                self._reject_unauthorized()
                return
            try:
                # Refresh the queue-depth gauges so a scrape sees current
                # depths even when no CLI has asked for counts recently.
                self.server.service.call("counts")
                body = telemetry.REGISTRY.render().encode("utf-8")
            except Exception as error:
                self._send_json(500, {"error": f"{type(error).__name__}: {error}"})
                return
            try:
                self.send_response(200)
                self.send_header("Content-Type", METRICS_CONTENT_TYPE)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
            except (BrokenPipeError, ConnectionResetError):
                pass
        else:
            self._send_json(404, {"error": f"no such endpoint: {self.path}"})

    def _send_json(self, code: int, payload: Dict[str, Any]) -> None:
        data = json.dumps(payload).encode("utf-8")
        try:
            self.send_response(code)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response; nothing to salvage

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # request logging off: workers poll, and stdout is the CLI's


def make_server(
    db: Union[str, Path],
    host: str = "127.0.0.1",
    port: int = 8176,
    policy: Optional[LeasePolicy] = None,
    token: Optional[str] = None,
    certfile: Optional[Union[str, Path]] = None,
    keyfile: Optional[Union[str, Path]] = None,
) -> ServiceHTTPServer:
    """Build (but do not start) a service bound to ``host:port``.

    ``port=0`` binds an ephemeral free port; read the real one from
    ``server.server_address[1]``.  Call ``serve_forever()`` to run and
    ``shutdown()`` + ``server_close()`` to stop.

    ``token`` requires ``Authorization: Bearer <token>`` on every RPC,
    ``/status`` and ``/metrics`` request (``/healthz`` stays open); ``certfile`` (with
    an optional separate ``keyfile``) wraps the listening socket in TLS,
    making the service an ``https://`` target.  Bad cert material fails
    here, at startup, not at the first client handshake.
    """
    if keyfile is not None and certfile is None:
        raise ValueError("keyfile requires certfile (the certificate to serve)")
    service = BrokerService(db, policy=policy)
    try:
        server = ServiceHTTPServer((host, port), ServiceRequestHandler, service, token=token)
    except BaseException:
        service.close()
        raise
    if certfile is not None:
        try:
            context = server_ssl_context(str(certfile), None if keyfile is None else str(keyfile))
            server.socket = context.wrap_socket(server.socket, server_side=True)
            server.tls = True
        except BaseException:
            server.server_close()
            raise
    return server


def serve(
    db: Union[str, Path],
    host: str = "127.0.0.1",
    port: int = 8176,
    policy: Optional[LeasePolicy] = None,
    token: Optional[str] = None,
    certfile: Optional[Union[str, Path]] = None,
    keyfile: Optional[Union[str, Path]] = None,
) -> None:
    """Blocking convenience wrapper: build a server and run it forever."""
    server = make_server(
        db, host=host, port=port, policy=policy, token=token, certfile=certfile, keyfile=keyfile
    )
    try:
        server.serve_forever()
    finally:
        server.server_close()
