"""Transport security for the sweep service: bearer tokens and TLS.

The service crosses host boundaries, so PR 3's "bare HTTP on a trusted
network" stance stops scaling the moment a fleet leaves the rack.  This
module holds everything both ends share:

- :class:`Credentials` — the client-side security settings (bearer
  token, CA bundle, verification policy), resolvable from the
  environment (:data:`TOKEN_ENV`, :data:`CAFILE_ENV`,
  :data:`VERIFY_ENV`) so every layer that eventually calls
  :func:`repro.distributed.targets.open_broker` — workers, pools, the
  sweep executor, the CLI — works unchanged against a secured endpoint.
- :func:`token_matches` — constant-time bearer-token comparison
  (:func:`hmac.compare_digest`), so the server's 401 path does not leak
  token prefixes through response timing.
- :func:`client_ssl_context` / :func:`server_ssl_context` — the
  :class:`ssl.SSLContext` pair for ``https://`` targets: clients verify
  against the system store or an explicit CA file (self-signed
  deployments ship their own cert as the CA), the server wraps its
  listening socket with a cert/key pair.

Tokens travel as ``Authorization: Bearer <token>`` headers; the
``/healthz`` liveness endpoint stays open so load balancers and CI
health loops need no secret.
"""

from __future__ import annotations

import hmac
import os
import ssl
from dataclasses import dataclass
from typing import Mapping, Optional

#: Environment variable carrying the shared bearer token (both ends).
TOKEN_ENV = "CHRONOS_TOKEN"

#: Environment variable naming the CA bundle clients verify against
#: (point it at the server's certificate for self-signed deployments).
CAFILE_ENV = "CHRONOS_CAFILE"

#: Environment variable disabling client certificate verification when
#: set to ``0``/``false``/``no`` (testing escape hatch, not a deployment
#: mode — prefer :data:`CAFILE_ENV`).
VERIFY_ENV = "CHRONOS_TLS_VERIFY"

_FALSE_WORDS = frozenset({"0", "false", "no", "off"})


@dataclass(frozen=True)
class Credentials:
    """Client-side security settings for one service URL.

    ``token=None`` sends no ``Authorization`` header; ``cafile=None``
    verifies ``https`` against the system trust store; ``verify=False``
    skips certificate verification entirely.
    """

    token: Optional[str] = None
    cafile: Optional[str] = None
    verify: bool = True

    @classmethod
    def resolve(
        cls,
        token: Optional[str] = None,
        cafile: Optional[str] = None,
        verify: Optional[bool] = None,
    ) -> "Credentials":
        """Explicit settings, falling back to the environment per field.

        This is the single lookup every transport layer goes through, so
        exporting :data:`TOKEN_ENV` (and :data:`CAFILE_ENV` for a
        self-signed cert) secures a whole topology — sweep driver, local
        pools and spawned worker processes alike, since child processes
        inherit the environment.
        """
        if token is None:
            token = os.environ.get(TOKEN_ENV) or None
        if cafile is None:
            cafile = os.environ.get(CAFILE_ENV) or None
        if verify is None:
            raw = os.environ.get(VERIFY_ENV)
            verify = raw is None or raw.strip().lower() not in _FALSE_WORDS
        return cls(token=token, cafile=cafile, verify=verify)


def token_matches(expected: Optional[str], presented: Optional[str]) -> bool:
    """Whether a presented bearer token matches, in constant time.

    ``expected=None`` means the server requires no token (everything
    matches); a required token never matches a missing one.  The
    comparison goes through :func:`hmac.compare_digest` so mismatches
    take the same time regardless of how many leading bytes agree.
    """
    if expected is None:
        return True
    if presented is None:
        return False
    return hmac.compare_digest(expected.encode("utf-8"), presented.encode("utf-8"))


def bearer_token(headers: Mapping[str, str]) -> Optional[str]:
    """Extract the token of an ``Authorization: Bearer …`` header.

    Returns ``None`` for a missing header or any other auth scheme —
    the caller treats both as "no token presented".
    """
    header = headers.get("Authorization")
    if not header:
        return None
    scheme, _, value = header.partition(" ")
    if scheme.lower() != "bearer" or not value:
        return None
    return value.strip()


def client_ssl_context(
    url: str, cafile: Optional[str] = None, verify: bool = True
) -> Optional[ssl.SSLContext]:
    """The SSL context a client should use for ``url`` (``None`` for http).

    ``cafile`` points verification at an explicit CA bundle — for
    self-signed deployments, the server certificate itself.  With
    ``verify=False`` the connection is still encrypted but the peer is
    not authenticated (timing-friendly for tests; do not deploy it).
    """
    if not url.startswith("https://"):
        return None
    if not verify:
        context = ssl.SSLContext(ssl.PROTOCOL_TLS_CLIENT)
        context.check_hostname = False
        context.verify_mode = ssl.CERT_NONE
        return context
    return ssl.create_default_context(cafile=cafile)


def server_ssl_context(certfile: str, keyfile: Optional[str] = None) -> ssl.SSLContext:
    """The SSL context a server should wrap its listening socket with.

    ``keyfile=None`` expects the private key inside ``certfile`` (a
    combined PEM).  Raises :class:`ssl.SSLError`/``OSError`` eagerly on
    unreadable or mismatched material, so a misconfigured ``serve``
    fails at startup rather than at the first handshake.
    """
    context = ssl.SSLContext(ssl.PROTOCOL_TLS_SERVER)
    context.load_cert_chain(certfile, keyfile)
    return context
