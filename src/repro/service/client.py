"""HTTP clients implementing the broker and result-store interfaces.

:class:`HttpBroker` and :class:`HttpResultStore` present the same
surface as :class:`~repro.distributed.Broker` and
:class:`~repro.distributed.SqliteResultStore`, but every call is one
``POST /rpc`` round trip to a :mod:`repro.service.server` — so
:class:`~repro.distributed.Worker`, ``WorkerPool.supervise``,
:func:`repro.distributed.execute` and the CLI run unchanged against a
remote URL.

Both clients are stateless between calls (plain ``urllib`` requests, no
shared connection), which makes them thread safe: one instance can be
shared by a worker loop and its heartbeat thread.  Transient transport
errors surface as :class:`ServiceError`; the lease protocol is already
built for missed beats, so callers treat them like any other lost
heartbeat.  Rejected credentials surface as the sharper
:class:`~repro.service.protocol.ServiceAuthError`, which is *not*
transient — retrying a bad token only hammers the server.

Security settings (bearer token, CA file, verification policy) come
from explicit constructor kwargs, falling back per field to the
``CHRONOS_TOKEN`` / ``CHRONOS_CAFILE`` / ``CHRONOS_TLS_VERIFY``
environment (see :class:`repro.service.security.Credentials`), so a
worker process spawned anywhere in the tree inherits the sweep's
credentials without plumbing.
"""

from __future__ import annotations

import json
import os
import ssl
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.api.facade import ScenarioResult, result_from_dict
from repro.distributed.broker import Task, TaskRecord
from repro.distributed.leases import LeasePolicy
from repro.service.protocol import (
    METRICS_PATH,
    RPC_PATH,
    ServiceAuthError,
    ServiceError,
    policy_from_wire,
    record_from_wire,
    task_from_wire,
)
from repro.service.security import Credentials, client_ssl_context

#: Seconds an RPC waits on the socket before failing.
RPC_TIMEOUT_S = 30.0


def rpc_call(
    url: str,
    method: str,
    params: Optional[Dict[str, Any]] = None,
    timeout: float = RPC_TIMEOUT_S,
    token: Optional[str] = None,
    context: Optional[ssl.SSLContext] = None,
) -> Any:
    """One ``POST /rpc`` round trip; returns the ``result`` field.

    ``token`` is sent as an ``Authorization: Bearer`` header; ``context``
    is the SSL context for ``https://`` URLs (``None`` uses stdlib
    defaults — the system trust store).  Raises :class:`ServiceError` on
    transport failures and on error responses, with the server's message
    attached when there is one, and :class:`ServiceAuthError` when the
    service rejects the credentials.
    """
    headers = {"Content-Type": "application/json"}
    if token:
        headers["Authorization"] = f"Bearer {token}"
    request = urllib.request.Request(
        url.rstrip("/") + RPC_PATH,
        data=json.dumps({"method": method, "params": params or {}}).encode("utf-8"),
        headers=headers,
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout, context=context) as response:
            body = json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        try:
            detail = json.loads(error.read().decode("utf-8")).get("error", "")
        except Exception:
            detail = ""
        if error.code in (401, 403):
            hint = (
                "missing or rejected bearer token — pass token=/--token "
                "or set CHRONOS_TOKEN"
            )
            raise ServiceAuthError(
                f"{method} failed: HTTP {error.code} ({detail or hint})"
            ) from error
        raise ServiceError(
            f"{method} failed: HTTP {error.code}" + (f" — {detail}" if detail else "")
        ) from error
    except (urllib.error.URLError, OSError, ValueError) as error:
        raise ServiceError(f"cannot reach sweep service at {url}: {error}") from error
    if not isinstance(body, dict) or "result" not in body:
        raise ServiceError(f"{method}: malformed response from {url}")
    return body["result"]


def fetch_metrics(
    url: str,
    timeout: float = RPC_TIMEOUT_S,
    token: Optional[str] = None,
    cafile: Optional[str] = None,
    verify: Optional[bool] = None,
) -> str:
    """``GET /metrics`` — the server's registry as Prometheus text.

    Credentials resolve exactly like the RPC clients' (explicit kwargs,
    then the ``CHRONOS_*`` environment), so ``chronos-experiments
    metrics --broker https://…`` works wherever ``workers status`` does.
    """
    credentials = Credentials.resolve(token=token, cafile=cafile, verify=verify)
    context = client_ssl_context(url, cafile=credentials.cafile, verify=credentials.verify)
    headers: Dict[str, str] = {}
    if credentials.token:
        headers["Authorization"] = f"Bearer {credentials.token}"
    request = urllib.request.Request(
        url.rstrip("/") + METRICS_PATH, headers=headers, method="GET"
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout, context=context) as response:
            return response.read().decode("utf-8")
    except urllib.error.HTTPError as error:
        if error.code in (401, 403):
            raise ServiceAuthError(
                f"metrics failed: HTTP {error.code} (missing or rejected bearer token — "
                "pass --token or set CHRONOS_TOKEN)"
            ) from error
        raise ServiceError(f"metrics failed: HTTP {error.code}") from error
    except (urllib.error.URLError, OSError, ValueError) as error:
        raise ServiceError(f"cannot reach sweep service at {url}: {error}") from error


class HttpBroker:
    """The :class:`~repro.distributed.Broker` interface over HTTP.

    Lease timing is enforced by the *server* (it owns the database and
    grants the leases); :attr:`policy` reports the server's policy so
    clients can pace heartbeats to match.  The constructor's ``policy``
    is only a local fallback used until the server has answered once.
    """

    def __init__(
        self,
        url: str,
        policy: Optional[LeasePolicy] = None,
        token: Optional[str] = None,
        cafile: Optional[str] = None,
        verify: Optional[bool] = None,
    ):
        self._url = url.rstrip("/")
        self._fallback_policy = policy if policy is not None else LeasePolicy()
        self._server_policy: Optional[LeasePolicy] = None
        self._credentials = Credentials.resolve(token=token, cafile=cafile, verify=verify)
        self._context = client_ssl_context(
            self._url, cafile=self._credentials.cafile, verify=self._credentials.verify
        )

    @property
    def url(self) -> str:
        """Base URL of the sweep service."""
        return self._url

    @property
    def policy(self) -> LeasePolicy:
        """The server's lease policy (fetched once, then cached)."""
        if self._server_policy is None:
            try:
                self._server_policy = policy_from_wire(self._call("policy"))
            except ServiceError:
                return self._fallback_policy
        return self._server_policy

    @property
    def credentials(self) -> Credentials:
        """The resolved security settings this client sends with."""
        return self._credentials

    def _call(self, method: str, **params: Any) -> Any:
        return rpc_call(
            self._url,
            method,
            params,
            token=self._credentials.token,
            context=self._context,
        )

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def enqueue(
        self,
        payloads: Sequence[Dict[str, Any]],
        fingerprints: Sequence[str],
        span: Optional[Dict[str, Any]] = None,
    ) -> int:
        if len(payloads) != len(fingerprints):
            raise ValueError("payloads and fingerprints must have equal length")
        return int(
            self._call(
                "enqueue",
                payloads=list(payloads),
                fingerprints=list(fingerprints),
                span=None if span is None else dict(span),
            )
        )

    def drain(self) -> None:
        self._call("drain")

    def is_draining(self) -> bool:
        return bool(self._call("is_draining"))

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------
    def claim(self, worker_id: str) -> Optional[Task]:
        return task_from_wire(self._call("claim", worker_id=worker_id))

    def claim_many(self, worker_id: str, limit: int) -> List[Task]:
        if limit < 1:
            raise ValueError("claim limit must be a positive integer")
        wire = self._call("claim_many", worker_id=worker_id, limit=int(limit))
        return [task_from_wire(item) for item in wire]

    def heartbeat(self, fingerprint: str, worker_id: str) -> bool:
        return bool(self._call("heartbeat", fingerprint=fingerprint, worker_id=worker_id))

    def complete(self, fingerprint: str, worker_id: str, result_payload: Dict[str, Any]) -> None:
        self._call(
            "complete",
            fingerprint=fingerprint,
            worker_id=worker_id,
            result_payload=result_payload,
        )

    def fail(self, fingerprint: str, worker_id: str, error: str) -> bool:
        return bool(
            self._call("fail", fingerprint=fingerprint, worker_id=worker_id, error=str(error))
        )

    def requeue_expired(
        self, now: Optional[float] = None, dry_run: bool = False
    ) -> Tuple[int, int]:
        # ``now`` crosses the wire (it used to be silently dropped, which
        # made lease debugging against a remote broker lie); ``None``
        # still means "the server's clock rules".  ``dry_run`` reports
        # what a sweep *would* do without touching any lease — the mode
        # behind ``workers status --expiring``.
        requeued, exhausted = self._call("requeue_expired", now=now, dry_run=dry_run)
        return int(requeued), int(exhausted)

    def release_worker(self, worker_id: str) -> Tuple[int, int]:
        requeued, exhausted = self._call("release_worker", worker_id=worker_id)
        return int(requeued), int(exhausted)

    def release_pending(self, fingerprints: Sequence[str]) -> int:
        return int(self._call("release_pending", fingerprints=list(fingerprints)))

    # ------------------------------------------------------------------
    # Worker liveness
    # ------------------------------------------------------------------
    def register_worker(self, worker_id: str, pid: Optional[int] = None) -> None:
        self._call(
            "register_worker",
            worker_id=worker_id,
            pid=os.getpid() if pid is None else int(pid),
        )

    def touch_worker(self, worker_id: str) -> None:
        self._call("touch_worker", worker_id=worker_id)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def counts(self) -> Dict[str, int]:
        return {state: int(count) for state, count in self._call("counts").items()}

    def settled(self) -> bool:
        return bool(self._call("settled"))

    def task(self, fingerprint: str) -> Optional[TaskRecord]:
        return record_from_wire(self._call("task", fingerprint=fingerprint))

    def tasks(self, status: Optional[str] = None) -> List[TaskRecord]:
        return [record_from_wire(item) for item in self._call("tasks", status=status)]

    def failed_payloads(self) -> List[Tuple[str, Dict[str, Any], str]]:
        return [
            (str(fingerprint), dict(payload), str(error))
            for fingerprint, payload, error in self._call("failed_payloads")
        ]

    def workers(self) -> List[Dict[str, Any]]:
        return list(self._call("workers"))

    def leased(self) -> List[Dict[str, Any]]:
        return list(self._call("leased"))

    def stats(self) -> Dict[str, Any]:
        stats = dict(self._call("stats"))
        stats["url"] = self._url  # where the answer came from, for status output
        return stats

    def telemetry_summary(self, window_s: float = 300.0) -> Dict[str, Any]:
        """Recent queue activity, computed server-side from the event log."""
        return dict(self._call("telemetry_summary", window_s=float(window_s)))

    def metrics(self) -> Dict[str, Any]:
        """JSON snapshot of the *server's* telemetry registry.

        The same data ``GET /metrics`` renders as Prometheus text; this
        form is for programmatic consumers (the ``metrics --json`` CLI).
        """
        return dict(self._call("metrics"))

    # ------------------------------------------------------------------
    # Event log
    # ------------------------------------------------------------------
    def last_event_seq(self) -> int:
        return int(self._call("last_event_seq"))

    def events_since(self, seq: int = 0, limit: int = 500) -> List[Dict[str, Any]]:
        """Queue-log rows newer than ``seq`` — live progress over HTTP.

        Same contract as :meth:`repro.distributed.Broker.events_since`:
        strictly monotonic ``seq``, oldest first, at most ``limit`` rows
        per round trip (batching keeps a hot sweep from ballooning one
        response).  Tailing this is how a sweep driver — or ``curl`` in a
        CI job — watches a remote, authenticated sweep make progress.
        """
        return [dict(row) for row in self._call("events_since", seq=int(seq), limit=int(limit))]

    def record_event(
        self,
        kind: str,
        fingerprint: Optional[str] = None,
        worker_id: Optional[str] = None,
        detail: Optional[str] = None,
    ) -> int:
        """Append an out-of-band event (adaptive-search trial decisions)."""
        return int(
            self._call(
                "record_event",
                kind=str(kind),
                fingerprint=fingerprint,
                worker_id=worker_id,
                detail=detail,
            )
        )

    def events_for(self, fingerprint: str, limit: int = 1000) -> List[Dict[str, Any]]:
        """Every retained event-log row about one fingerprint, oldest first."""
        return [
            dict(row)
            for row in self._call("events_for", fingerprint=str(fingerprint), limit=int(limit))
        ]

    def done_watermark(self) -> int:
        return int(self._call("done_watermark"))

    def prune_events(self, before_seq: Optional[int] = None) -> int:
        """Prune settled event-log history on the server; returns the count."""
        return int(
            self._call(
                "prune_events",
                before_seq=None if before_seq is None else int(before_seq),
            )
        )

    def close(self) -> None:
        """Nothing to release: calls are independent requests."""

    def __enter__(self) -> "HttpBroker":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class HttpResultStore:
    """The :class:`~repro.distributed.SqliteResultStore` interface over HTTP.

    Parsed results are memoized locally (like the sqlite store's memory
    layer), so repeated ``get`` calls for collected fingerprints do not
    re-fetch or re-parse.
    """

    def __init__(
        self,
        url: str,
        token: Optional[str] = None,
        cafile: Optional[str] = None,
        verify: Optional[bool] = None,
    ):
        self._url = url.rstrip("/")
        self._memory: Dict[str, ScenarioResult] = {}
        self._credentials = Credentials.resolve(token=token, cafile=cafile, verify=verify)
        self._context = client_ssl_context(
            self._url, cafile=self._credentials.cafile, verify=self._credentials.verify
        )

    @property
    def url(self) -> str:
        """Base URL of the sweep service."""
        return self._url

    @property
    def credentials(self) -> Credentials:
        """The resolved security settings this client sends with."""
        return self._credentials

    def _call(self, method: str, **params: Any) -> Any:
        return rpc_call(
            self._url,
            method,
            params,
            token=self._credentials.token,
            context=self._context,
        )

    def get(self, fingerprint: str) -> Optional[ScenarioResult]:
        if fingerprint in self._memory:
            return self._memory[fingerprint]
        payload = self._call("result_get", fingerprint=fingerprint)
        if payload is None:
            return None
        try:
            result = result_from_dict(payload)
        except (ValueError, TypeError, KeyError):
            return None  # corrupt row: treat as a miss, like the local stores
        self._memory[fingerprint] = result
        return result

    def put(self, result: ScenarioResult, worker_id: Optional[str] = None) -> None:
        self._memory[result.fingerprint] = result
        self._call("result_put", payload=result.to_dict(), worker_id=worker_id)

    def fingerprints(self) -> Set[str]:
        return set(self._call("result_fingerprints"))

    def clear(self) -> None:
        """Drop the local memo (server rows are left alone)."""
        self._memory.clear()

    def __len__(self) -> int:
        return int(self._call("result_len"))

    def __contains__(self, fingerprint: object) -> bool:
        return isinstance(fingerprint, str) and self.get(fingerprint) is not None

    def close(self) -> None:
        """Nothing to release: calls are independent requests."""

    def __enter__(self) -> "HttpResultStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
