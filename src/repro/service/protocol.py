"""Wire protocol of the sweep service: JSON bodies shared by both ends.

The service speaks a deliberately small JSON-over-HTTP dialect:

- ``POST /rpc`` with ``{"method": <name>, "params": {...}}`` invokes one
  broker or result-store operation and answers ``{"result": ...}`` on
  success or ``{"error": "..."}`` with a 4xx/5xx status on failure.
- ``GET /healthz`` answers liveness (used by CI and load balancers).
- ``GET /status`` answers the broker's :meth:`~repro.distributed.Broker.
  stats` dict (handy for ``curl``; the CLI goes through RPC).
- ``GET /metrics`` answers the process-wide telemetry registry in the
  Prometheus text exposition format.  Like ``/status`` it sits behind
  the bearer token when one is configured; scrapers pass
  ``Authorization: Bearer <token>``.

Everything on the wire is JSON-native: :class:`~repro.distributed.Task`,
:class:`~repro.distributed.TaskRecord` and
:class:`~repro.distributed.LeasePolicy` cross as plain dicts via the
``*_to_wire`` / ``*_from_wire`` helpers here, so the server never pickles
and any HTTP client can drive a queue.

Queue *progress* crosses the same way: the ``events_since`` method
relays the broker's monotonic event log as plain dicts (``{"seq", "ts",
"kind", "fingerprint", "worker_id", "detail"}``), ``last_event_seq``
answers where the log stands, and ``release_pending`` lets a cancelled
remote sweep withdraw its unclaimed tasks.  All three are additive —
protocol version 1 clients keep working against newer servers, and the
sweep driver degrades to result-store polling against older ones.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

from repro.distributed.broker import Task, TaskRecord
from repro.distributed.leases import Lease, LeasePolicy

#: URL paths of the four endpoints.
RPC_PATH = "/rpc"
HEALTH_PATH = "/healthz"
STATUS_PATH = "/status"
METRICS_PATH = "/metrics"

#: Content type of the Prometheus text exposition format.
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Protocol revision, reported by ``/healthz`` (bump on breaking change).
PROTOCOL_VERSION = 1


class ServiceError(RuntimeError):
    """An RPC against the sweep service failed (transport or server side)."""


class ServiceAuthError(ServiceError):
    """The service rejected the request's credentials (HTTP 401/403).

    Kept distinct from plain :class:`ServiceError` because the two call
    for opposite reactions: transport blips are transient (workers retry
    them with backoff), but a bad or missing bearer token will never get
    better on its own — workers fail fast and the CLI turns it into an
    exit-2 diagnostic instead of a retry loop.
    """


def task_to_wire(task: Optional[Task]) -> Optional[Dict[str, Any]]:
    """A claimed task as a JSON-native dict (``None`` passes through)."""
    if task is None:
        return None
    return {
        "fingerprint": task.fingerprint,
        "payload": task.payload,
        "attempts": task.attempts,
        "lease": {
            "fingerprint": task.lease.fingerprint,
            "owner": task.lease.owner,
            "expires_at": task.lease.expires_at,
        },
    }


def task_from_wire(data: Optional[Mapping[str, Any]]) -> Optional[Task]:
    """Rebuild a :class:`Task` from :func:`task_to_wire` output."""
    if data is None:
        return None
    lease = data["lease"]
    return Task(
        fingerprint=str(data["fingerprint"]),
        payload=dict(data["payload"]),
        attempts=int(data["attempts"]),
        lease=Lease(
            fingerprint=str(lease["fingerprint"]),
            owner=str(lease["owner"]),
            expires_at=float(lease["expires_at"]),
        ),
    )


def record_to_wire(record: Optional[TaskRecord]) -> Optional[Dict[str, Any]]:
    """A task snapshot as a JSON-native dict (``None`` passes through)."""
    if record is None:
        return None
    return {
        "fingerprint": record.fingerprint,
        "status": record.status,
        "attempts": record.attempts,
        "max_attempts": record.max_attempts,
        "lease_owner": record.lease_owner,
        "lease_expires_at": record.lease_expires_at,
        "error": record.error,
    }


def record_from_wire(data: Optional[Mapping[str, Any]]) -> Optional[TaskRecord]:
    """Rebuild a :class:`TaskRecord` from :func:`record_to_wire` output."""
    if data is None:
        return None
    return TaskRecord(
        fingerprint=str(data["fingerprint"]),
        status=str(data["status"]),
        attempts=int(data["attempts"]),
        max_attempts=int(data["max_attempts"]),
        lease_owner=data.get("lease_owner"),
        lease_expires_at=data.get("lease_expires_at"),
        error=data.get("error"),
    )


def policy_to_wire(policy: LeasePolicy) -> Dict[str, Any]:
    """A lease policy as a JSON-native dict."""
    return {
        "timeout": policy.timeout,
        "heartbeat_interval": policy.heartbeat_interval,
        "max_attempts": policy.max_attempts,
    }


def policy_from_wire(data: Mapping[str, Any]) -> LeasePolicy:
    """Rebuild a :class:`LeasePolicy` from :func:`policy_to_wire` output."""
    return LeasePolicy(
        timeout=float(data["timeout"]),
        heartbeat_interval=float(data["heartbeat_interval"]),
        max_attempts=int(data["max_attempts"]),
    )
