"""Abstract base class for execution-time distributions.

All distributions in the Chronos reproduction expose the same minimal
interface: sampling (vectorised via numpy), the cumulative distribution
function, the survival function, the mean, and the quantile function.
Strategies and the simulator only depend on this interface, so any
distribution can be plugged in as the attempt execution-time model.
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence, Union

import numpy as np

ArrayLike = Union[float, Sequence[float], np.ndarray]


class Distribution(abc.ABC):
    """Interface for a (continuous, positive) execution-time distribution."""

    @abc.abstractmethod
    def sample(self, size: int = 1, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Draw ``size`` i.i.d. samples.

        Parameters
        ----------
        size:
            Number of samples to draw.
        rng:
            Optional numpy random generator.  A fresh default generator is
            used when omitted; callers that need reproducibility should pass
            an explicitly seeded generator.
        """

    @abc.abstractmethod
    def cdf(self, t: ArrayLike) -> np.ndarray:
        """Cumulative distribution function ``P(T <= t)``."""

    @abc.abstractmethod
    def mean(self) -> float:
        """Expected value of the distribution (may be ``inf``)."""

    @abc.abstractmethod
    def quantile(self, q: ArrayLike) -> np.ndarray:
        """Inverse CDF evaluated at probability ``q``."""

    def sf(self, t: ArrayLike) -> np.ndarray:
        """Survival function ``P(T > t)``."""
        return 1.0 - self.cdf(t)

    def sample_one(self, rng: Optional[np.random.Generator] = None) -> float:
        """Draw a single sample as a Python float."""
        return float(self.sample(size=1, rng=rng)[0])

    @staticmethod
    def _resolve_rng(rng: Optional[np.random.Generator]) -> np.random.Generator:
        return rng if rng is not None else np.random.default_rng()

    @staticmethod
    def _as_array(t: ArrayLike) -> np.ndarray:
        return np.asarray(t, dtype=float)
