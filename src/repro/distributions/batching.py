"""Batched random sampling with a stream-identical draw order.

The simulator's hot loops used to make one RNG round-trip per attempt
(``rng.uniform(size=1)`` → one-element array → ``float``).  For numpy's
``Generator`` the partition of draws into calls does not change the
stream: ``uniform(size=n)`` returns bit-for-bit the same values as ``n``
successive ``uniform(size=1)`` calls, and the same holds for the
inverse-transform samplers built on top of it.  :class:`SampleBuffer`
exploits this: it draws a block of samples per RNG round-trip and hands
them out one at a time, so consumers observe **exactly** the sequence
they would have seen with per-draw calls, at a fraction of the overhead.

Batching can be disabled (block size forced to 1, i.e. the historical
call pattern) by setting the environment variable ``CHRONOS_VECTORIZE``
to ``0``/``off``/``false``/``no``; the parity suite runs both modes and
asserts identical results.
"""

from __future__ import annotations

import os
from typing import Callable

import numpy as np

#: Values of ``CHRONOS_VECTORIZE`` that disable batched sampling.
_DISABLED_VALUES = frozenset({"0", "off", "false", "no"})


def vectorized_batch_size(default: int) -> int:
    """Effective sample-block size honouring ``CHRONOS_VECTORIZE``.

    Returns ``default`` (clamped to at least 1) normally, and ``1`` when
    the environment variable disables batching.  The variable is read at
    call time, not import time, so tests can toggle it per-scenario.
    """
    value = os.environ.get("CHRONOS_VECTORIZE", "1").strip().lower()
    if value in _DISABLED_VALUES:
        return 1
    return max(1, default)


class SampleBuffer:
    """Hands out scalar samples from block draws, preserving draw order.

    Parameters
    ----------
    draw:
        Callable mapping a block size to a numpy array of that many
        samples (e.g. ``lambda n: distribution.sample(n, rng)``).  It is
        invoked lazily, only when the buffer is empty.
    batch:
        Block size per ``draw`` call; pass the result of
        :func:`vectorized_batch_size` to honour the environment toggle.

    Because each underlying RNG must serve exactly one purpose for the
    partition invariance to apply, create one buffer per (RNG, purpose)
    pair — never share an RNG between a buffer and direct draws.
    """

    __slots__ = ("_draw", "_batch", "_buffer", "_position")

    def __init__(self, draw: Callable[[int], np.ndarray], batch: int):
        if batch < 1:
            raise ValueError("batch size must be at least 1")
        self._draw = draw
        self._batch = batch
        self._buffer: np.ndarray = np.empty(0)
        self._position = 0

    def next(self) -> float:
        """The next sample in the stream, as a Python float."""
        position = self._position
        buffer = self._buffer
        if position >= len(buffer):
            buffer = self._buffer = self._draw(self._batch)
            position = 0
        self._position = position + 1
        return float(buffer[position])

    def invalidate(self) -> None:
        """Drop buffered samples (e.g. when the draw parameters change).

        Pending samples are discarded, not replayed; callers must only
        invalidate when the underlying distribution genuinely changed.
        """
        self._buffer = np.empty(0)
        self._position = 0
