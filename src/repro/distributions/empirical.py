"""Empirical (sample-backed) execution-time distribution.

Trace-driven simulation matches per-job execution-time distributions from a
real trace.  When the trace provides raw durations rather than fitted Pareto
parameters, this class wraps them into the common distribution interface so
they can be plugged into the simulator unchanged.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.distributions.base import ArrayLike, Distribution


class EmpiricalDistribution(Distribution):
    """Distribution defined by a finite sample of observed durations.

    Sampling draws uniformly (with replacement) from the observed values;
    the CDF is the empirical CDF; quantiles use linear interpolation.
    """

    def __init__(self, samples: Sequence[float]):
        values = np.asarray(list(samples), dtype=float)
        if values.size == 0:
            raise ValueError("EmpiricalDistribution requires at least one sample")
        if np.any(values <= 0):
            raise ValueError("all samples must be positive execution times")
        self._sorted = np.sort(values)

    @property
    def samples(self) -> np.ndarray:
        """The sorted observed samples (read-only copy)."""
        return self._sorted.copy()

    def sample(self, size: int = 1, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        rng = self._resolve_rng(rng)
        return rng.choice(self._sorted, size=size, replace=True)

    def cdf(self, t: ArrayLike) -> np.ndarray:
        t = self._as_array(t)
        counts = np.searchsorted(self._sorted, t, side="right")
        return counts / self._sorted.size

    def quantile(self, q: ArrayLike) -> np.ndarray:
        q = self._as_array(q)
        if np.any((q < 0) | (q > 1)):
            raise ValueError("quantile argument must lie in [0, 1]")
        return np.quantile(self._sorted, q)

    def mean(self) -> float:
        return float(self._sorted.mean())

    def minimum(self) -> float:
        """Smallest observed duration (used as a tmin estimate)."""
        return float(self._sorted[0])

    def maximum(self) -> float:
        """Largest observed duration."""
        return float(self._sorted[-1])
