"""Probability distributions used throughout the Chronos reproduction.

The paper models the execution time of every task attempt as an i.i.d.
Pareto random variable with scale ``tmin`` (minimum execution time) and
tail index ``beta``.  This subpackage provides:

* :class:`~repro.distributions.pareto.ParetoDistribution` — the Type-I
  Pareto distribution with sampling, moments, order statistics and MLE
  fitting,
* :class:`~repro.distributions.pareto.TruncatedParetoDistribution` — a
  bounded variant used by the synthetic trace generator,
* :class:`~repro.distributions.empirical.EmpiricalDistribution` — a
  non-parametric distribution backed by observed samples (used to match
  per-job execution-time distributions from traces),
* :class:`~repro.distributions.shifted.ShiftedDistribution` — a thin
  wrapper adding a deterministic offset (JVM launch time) to any base
  distribution.
"""

from repro.distributions.base import Distribution
from repro.distributions.batching import SampleBuffer, vectorized_batch_size
from repro.distributions.empirical import EmpiricalDistribution
from repro.distributions.pareto import (
    ParetoDistribution,
    TruncatedParetoDistribution,
    fit_pareto_mle,
)
from repro.distributions.shifted import ShiftedDistribution

__all__ = [
    "Distribution",
    "EmpiricalDistribution",
    "ParetoDistribution",
    "SampleBuffer",
    "TruncatedParetoDistribution",
    "ShiftedDistribution",
    "fit_pareto_mle",
    "vectorized_batch_size",
]
