"""Deterministically shifted distributions.

The Chronos prototype explicitly accounts for JVM launch time: an attempt's
wall-clock completion is (launch delay) + (data-processing time).  The
simulator models this by shifting the processing-time distribution by the
JVM startup delay; this wrapper provides that shift for any base
distribution without duplicating sampling logic.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.distributions.base import ArrayLike, Distribution


class ShiftedDistribution(Distribution):
    """``T' = T + offset`` for a base distribution ``T`` and fixed offset."""

    def __init__(self, base: Distribution, offset: float):
        if offset < 0:
            raise ValueError("offset must be non-negative")
        self._base = base
        self._offset = float(offset)

    @property
    def base(self) -> Distribution:
        """The wrapped base distribution."""
        return self._base

    @property
    def offset(self) -> float:
        """The deterministic shift added to every sample."""
        return self._offset

    def sample(self, size: int = 1, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        return self._base.sample(size=size, rng=rng) + self._offset

    def cdf(self, t: ArrayLike) -> np.ndarray:
        t = self._as_array(t)
        return self._base.cdf(t - self._offset)

    def quantile(self, q: ArrayLike) -> np.ndarray:
        return self._base.quantile(q) + self._offset

    def mean(self) -> float:
        return self._base.mean() + self._offset
