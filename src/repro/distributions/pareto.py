"""Pareto (Type I) execution-time distribution.

The paper (Section III, eq. 2) models the execution time of each task
attempt as Pareto distributed::

    f(t) = beta * tmin**beta / t**(beta + 1)     for t >= tmin

with minimum execution time ``tmin`` and tail index ``beta``.  Prior work
observes ``beta < 2`` on contended clusters, i.e. a heavy tail with
infinite variance, which is what makes stragglers so damaging.

This module also provides a truncated Pareto variant (used when the
synthetic trace generator needs bounded task durations) and a simple
maximum-likelihood fitter used by the trace tooling and the analysis
subpackage.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.distributions.base import ArrayLike, Distribution


@dataclass(frozen=True)
class ParetoDistribution(Distribution):
    """Type-I Pareto distribution with scale ``tmin`` and tail index ``beta``.

    Parameters
    ----------
    tmin:
        Minimum execution time (scale parameter), strictly positive.
    beta:
        Tail index (shape parameter), strictly positive.  Values below 1
        give an infinite mean; the paper's experiments use ``1 < beta < 2``.
    """

    tmin: float
    beta: float

    def __post_init__(self) -> None:
        if self.tmin <= 0:
            raise ValueError(f"tmin must be positive, got {self.tmin}")
        if self.beta <= 0:
            raise ValueError(f"beta must be positive, got {self.beta}")

    # ------------------------------------------------------------------
    # Distribution interface
    # ------------------------------------------------------------------
    def sample(self, size: int = 1, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        rng = self._resolve_rng(rng)
        # Inverse-transform sampling: if U ~ Uniform(0, 1), then
        # tmin / U**(1/beta) is Pareto(tmin, beta).
        u = rng.uniform(size=size)
        return self.tmin / np.power(u, 1.0 / self.beta)

    def pdf(self, t: ArrayLike) -> np.ndarray:
        t = self._as_array(t)
        out = np.zeros_like(t)
        mask = t >= self.tmin
        out[mask] = self.beta * self.tmin**self.beta / np.power(t[mask], self.beta + 1)
        return out

    def cdf(self, t: ArrayLike) -> np.ndarray:
        t = self._as_array(t)
        out = np.zeros_like(t)
        mask = t >= self.tmin
        out[mask] = 1.0 - np.power(self.tmin / t[mask], self.beta)
        return out

    def sf(self, t: ArrayLike) -> np.ndarray:
        t = self._as_array(t)
        out = np.ones_like(t)
        mask = t >= self.tmin
        out[mask] = np.power(self.tmin / t[mask], self.beta)
        return out

    def quantile(self, q: ArrayLike) -> np.ndarray:
        q = self._as_array(q)
        if np.any((q < 0) | (q > 1)):
            raise ValueError("quantile argument must lie in [0, 1]")
        return self.tmin / np.power(1.0 - q, 1.0 / self.beta)

    def mean(self) -> float:
        """``E[T] = tmin + tmin / (beta - 1)`` for ``beta > 1`` else ``inf``.

        The paper uses exactly this identity in the Figure 4 discussion.
        """
        if self.beta <= 1:
            return math.inf
        return self.tmin * self.beta / (self.beta - 1.0)

    def variance(self) -> float:
        """Variance, infinite for ``beta <= 2``."""
        if self.beta <= 2:
            return math.inf
        b = self.beta
        return self.tmin**2 * b / ((b - 1.0) ** 2 * (b - 2.0))

    def median(self) -> float:
        return float(self.quantile(0.5))

    # ------------------------------------------------------------------
    # Order statistics (Lemma 1 of the paper)
    # ------------------------------------------------------------------
    def min_of(self, n: int) -> "ParetoDistribution":
        """Distribution of the minimum of ``n`` i.i.d. copies.

        The minimum of ``n`` i.i.d. Pareto(tmin, beta) variables is again
        Pareto with the same scale and tail index ``n * beta``; this is the
        fact behind Lemma 1 of the paper.
        """
        if n < 1:
            raise ValueError("n must be a positive integer")
        return ParetoDistribution(self.tmin, self.beta * n)

    def expected_min_of(self, n: int) -> float:
        """Lemma 1: ``E[min of n attempts] = tmin * n * beta / (n * beta - 1)``.

        Requires ``n * beta > 1`` (otherwise the expectation diverges).
        """
        if n < 1:
            raise ValueError("n must be a positive integer")
        nb = n * self.beta
        if nb <= 1:
            return math.inf
        return self.tmin * nb / (nb - 1.0)

    def prob_exceeds(self, t: float) -> float:
        """``P(T > t)`` as a scalar convenience wrapper."""
        if t <= self.tmin:
            return 1.0
        return float((self.tmin / t) ** self.beta)

    def conditional_mean_below(self, d: float) -> float:
        """``E[T | T <= d]`` for ``d > tmin``.

        This is the quantity the paper denotes ``E(Tj | Tj,1 <= D)`` in
        Theorems 4 and 6::

            E[T | T <= D] = tmin * D * beta * (tmin**(beta-1) - D**(beta-1))
                            / ((1 - beta) * (D**beta - tmin**beta))
        """
        if d <= self.tmin:
            raise ValueError("conditioning bound must exceed tmin")
        b, tm = self.beta, self.tmin
        if abs(b - 1.0) < 1e-12:
            # Limit beta -> 1: E[T | T <= D] = tmin*D*ln(D/tmin) / (D - tmin)
            return tm * d * math.log(d / tm) / (d - tm)
        numerator = tm * d * b * (tm ** (b - 1.0) - d ** (b - 1.0))
        denominator = (1.0 - b) * (d**b - tm**b)
        return numerator / denominator

    def conditional_mean_above(self, d: float) -> float:
        """``E[T | T > d]`` for ``d >= tmin`` (requires ``beta > 1``)."""
        if self.beta <= 1:
            return math.inf
        lower = max(d, self.tmin)
        # Conditional distribution of T given T > d is Pareto(d, beta)
        # (memoryless-like scaling property of the Pareto distribution).
        return lower * self.beta / (self.beta - 1.0)

    def scaled(self, factor: float) -> "ParetoDistribution":
        """Distribution of ``factor * T`` (a Pareto with scaled ``tmin``).

        Used by Speculative-Resume analysis where extra attempts process
        only the remaining ``(1 - phi)`` fraction of the work.
        """
        if factor <= 0:
            raise ValueError("factor must be positive")
        return ParetoDistribution(self.tmin * factor, self.beta)


@dataclass(frozen=True)
class TruncatedParetoDistribution(Distribution):
    """Pareto distribution truncated (renormalised) to ``[tmin, tmax]``.

    The synthetic trace generator uses this to bound task durations when
    matching the per-job execution-time ranges reported in traces while
    keeping the Pareto body shape.
    """

    tmin: float
    beta: float
    tmax: float

    def __post_init__(self) -> None:
        if self.tmin <= 0:
            raise ValueError(f"tmin must be positive, got {self.tmin}")
        if self.beta <= 0:
            raise ValueError(f"beta must be positive, got {self.beta}")
        if self.tmax <= self.tmin:
            raise ValueError("tmax must exceed tmin")

    @property
    def _mass(self) -> float:
        """Probability mass of the untruncated Pareto on [tmin, tmax]."""
        return 1.0 - (self.tmin / self.tmax) ** self.beta

    def sample(self, size: int = 1, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        rng = self._resolve_rng(rng)
        u = rng.uniform(size=size) * self._mass
        return self.tmin / np.power(1.0 - u, 1.0 / self.beta)

    def cdf(self, t: ArrayLike) -> np.ndarray:
        t = np.atleast_1d(self._as_array(t))
        base = ParetoDistribution(self.tmin, self.beta)
        out = base.cdf(np.clip(t, self.tmin, self.tmax)) / self._mass
        out = np.where(t < self.tmin, 0.0, out)
        out = np.where(t >= self.tmax, 1.0, out)
        return out

    def quantile(self, q: ArrayLike) -> np.ndarray:
        q = self._as_array(q)
        if np.any((q < 0) | (q > 1)):
            raise ValueError("quantile argument must lie in [0, 1]")
        return self.tmin / np.power(1.0 - q * self._mass, 1.0 / self.beta)

    def mean(self) -> float:
        b, lo, hi = self.beta, self.tmin, self.tmax
        if abs(b - 1.0) < 1e-12:
            raw = lo * math.log(hi / lo)
        else:
            raw = b * lo**b / (b - 1.0) * (lo ** (1.0 - b) - hi ** (1.0 - b))
        return raw / self._mass


def fit_pareto_mle(samples: np.ndarray) -> Tuple[float, float]:
    """Fit ``(tmin, beta)`` by maximum likelihood from positive samples.

    The MLE of ``tmin`` is the sample minimum; conditioned on that, the MLE
    of ``beta`` is ``n / sum(log(x_i / tmin))``.

    Returns
    -------
    (tmin, beta):
        The fitted scale and tail index.
    """
    samples = np.asarray(samples, dtype=float)
    if samples.ndim != 1 or samples.size < 2:
        raise ValueError("need a one-dimensional array of at least two samples")
    if np.any(samples <= 0):
        raise ValueError("all samples must be positive")
    tmin = float(samples.min())
    log_ratios = np.log(samples / tmin)
    total = float(log_ratios.sum())
    if total <= 0:
        # Degenerate case: all samples identical; report a very heavy scale.
        return tmin, math.inf
    beta = samples.size / total
    return tmin, float(beta)
