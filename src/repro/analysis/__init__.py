"""Validation and sensitivity analysis.

* :mod:`repro.analysis.validation` — Monte-Carlo validation of the
  closed-form PoCD and machine-time expressions (Theorems 1-6) against
  direct sampling of the attempt model,
* :mod:`repro.analysis.sensitivity` — parameter sweeps of the analytical
  model (deadline, beta, number of tasks) used by the ablation benches
  and the documentation examples,
* :mod:`repro.analysis.estimators` — ablation of the Chronos JVM-aware
  completion-time estimator against the default Hadoop estimator.
"""

from repro.analysis.estimators import EstimatorAblationResult, estimator_ablation
from repro.analysis.sensitivity import (
    deadline_sensitivity,
    optimal_r_sensitivity,
    tail_sensitivity,
)
from repro.analysis.validation import (
    MonteCarloResult,
    monte_carlo_cost,
    monte_carlo_pocd,
    validate_strategy,
)

__all__ = [
    "MonteCarloResult",
    "monte_carlo_pocd",
    "monte_carlo_cost",
    "validate_strategy",
    "deadline_sensitivity",
    "tail_sensitivity",
    "optimal_r_sensitivity",
    "estimator_ablation",
    "EstimatorAblationResult",
]
