"""Monte-Carlo validation of the closed-form PoCD and cost expressions.

The paper derives PoCD (Theorems 1, 3, 5) and expected machine running
time (Theorems 2, 4, 6) analytically.  This module re-derives both by
directly simulating the per-task attempt model — sample the attempt
execution times, apply the strategy's launch/kill rules mechanically, and
average — which provides an independent check of the algebra (and of our
implementation of it).  The test suite asserts agreement within Monte-
Carlo error; the analysis bench reports the deviations.

This is *not* the full discrete-event simulator: it excludes JVM launch
delay, container queueing and estimation error, exactly like the paper's
analysis does, so the two should agree tightly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.cost import expected_machine_time
from repro.core.model import StragglerModel, StrategyName
from repro.core.pocd import pocd


@dataclass(frozen=True)
class MonteCarloResult:
    """Closed-form vs Monte-Carlo estimate of one quantity."""

    strategy: StrategyName
    r: int
    analytical: float
    simulated: float
    standard_error: float
    samples: int

    @property
    def absolute_error(self) -> float:
        """``|analytical - simulated|``."""
        return abs(self.analytical - self.simulated)

    @property
    def relative_error(self) -> float:
        """Absolute error relative to the analytical value (``inf`` if 0)."""
        if self.analytical == 0:
            return math.inf
        return self.absolute_error / abs(self.analytical)

    @property
    def within(self) -> float:
        """Error expressed in standard errors (z-score-like)."""
        if self.standard_error == 0:
            return 0.0 if self.absolute_error == 0 else math.inf
        return self.absolute_error / self.standard_error


def _sample_task_outcome(
    model: StragglerModel,
    strategy: StrategyName,
    r: int,
    rng: np.random.Generator,
) -> tuple:
    """Simulate one task under the analytical model; return (met, machine_time).

    The mechanics mirror the proofs: Clone races ``r + 1`` attempts from
    time 0 and kills the losers at ``tau_kill``; the speculative strategies
    observe whether the original attempt will miss the deadline at
    ``tau_est`` (the analysis assumes perfect detection) and launch extra
    attempts accordingly.

    One convention of the paper is reproduced on purpose: Theorems 4 and 6
    compute the expected post-detection runtime with Lemma-1 style
    integrals that start at ``tmin``, i.e. they effectively floor the
    winning attempt's runtime at ``tmin``.  The machine-time samples below
    apply the same floor so the Monte-Carlo estimate validates the
    published formulas rather than a slightly different quantity.
    """
    dist = model.attempt_distribution
    if strategy is StrategyName.CLONE:
        times = dist.sample(r + 1, rng=rng)
        winner = float(times.min())
        machine = r * model.tau_kill + winner
        return winner <= model.deadline, machine

    original = float(dist.sample(1, rng=rng)[0])
    if original <= model.deadline:
        return True, original

    window = model.tau_kill - model.tau_est
    if strategy is StrategyName.SPECULATIVE_RESTART:
        if r == 0:
            return False, original
        extras = dist.sample(r, rng=rng)
        # Completion measured from tau_est: original has been running for
        # tau_est already, extras start fresh.
        candidates = np.concatenate(([original - model.tau_est], extras))
        winner = float(candidates.min())
        met = winner <= model.deadline - model.tau_est
        machine = model.tau_est + r * window + max(winner, model.tmin)
        return met, machine

    if strategy is StrategyName.SPECULATIVE_RESUME:
        remaining = model.remaining_work_fraction
        extras = dist.sample(r + 1, rng=rng) * remaining
        winner = float(extras.min())
        met = winner <= model.deadline - model.tau_est
        machine = model.tau_est + r * window + max(winner, model.tmin)
        return met, machine

    raise ValueError(f"no Monte-Carlo model for strategy {strategy}")


def monte_carlo_pocd(
    model: StragglerModel,
    strategy: StrategyName,
    r: int,
    samples: int = 20000,
    seed: Optional[int] = 0,
) -> MonteCarloResult:
    """Monte-Carlo estimate of the PoCD, compared with the closed form."""
    rng = np.random.default_rng(seed)
    met = 0
    for _ in range(samples):
        job_met = True
        for _ in range(model.num_tasks):
            task_met, _ = _sample_task_outcome(model, strategy, r, rng)
            if not task_met:
                job_met = False
                break
        met += job_met
    estimate = met / samples
    stderr = math.sqrt(max(estimate * (1 - estimate), 1e-12) / samples)
    return MonteCarloResult(
        strategy=strategy,
        r=r,
        analytical=pocd(model, strategy, r),
        simulated=estimate,
        standard_error=stderr,
        samples=samples,
    )


def monte_carlo_cost(
    model: StragglerModel,
    strategy: StrategyName,
    r: int,
    samples: int = 20000,
    seed: Optional[int] = 0,
) -> MonteCarloResult:
    """Monte-Carlo estimate of the expected machine time per job."""
    rng = np.random.default_rng(seed)
    totals = np.empty(samples)
    for i in range(samples):
        total = 0.0
        for _ in range(model.num_tasks):
            _, machine = _sample_task_outcome(model, strategy, r, rng)
            total += machine
        totals[i] = total
    estimate = float(totals.mean())
    stderr = float(totals.std(ddof=1) / math.sqrt(samples))
    return MonteCarloResult(
        strategy=strategy,
        r=r,
        analytical=expected_machine_time(model, strategy, r),
        simulated=estimate,
        standard_error=stderr,
        samples=samples,
    )


def validate_strategy(
    model: StragglerModel,
    strategy: StrategyName,
    r: int,
    samples: int = 20000,
    seed: Optional[int] = 0,
) -> dict:
    """Validate both PoCD and cost for one (strategy, r); return a summary."""
    pocd_result = monte_carlo_pocd(model, strategy, r, samples=samples, seed=seed)
    cost_result = monte_carlo_cost(model, strategy, r, samples=samples, seed=seed)
    return {
        "strategy": strategy.display_name,
        "r": r,
        "pocd_analytical": pocd_result.analytical,
        "pocd_simulated": pocd_result.simulated,
        "pocd_relative_error": pocd_result.relative_error,
        "cost_analytical": cost_result.analytical,
        "cost_simulated": cost_result.simulated,
        "cost_relative_error": cost_result.relative_error,
    }
