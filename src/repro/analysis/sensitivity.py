"""Analytical sensitivity sweeps.

These helpers sweep one model parameter at a time and report how PoCD,
cost and the optimal ``r`` respond.  They are used by the documentation
examples, the ablation benches, and the property-style tests that check
the qualitative claims of Section V (e.g. "as job deadlines increase and
become sufficiently large, the optimal r approaches zero").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.model import StragglerModel, StrategyName
from repro.core.optimizer import ChronosOptimizer
from repro.core.pocd import pocd
from repro.core.cost import expected_machine_time


@dataclass(frozen=True)
class SweepPoint:
    """One point of a sensitivity sweep."""

    parameter: float
    pocd: float
    machine_time: float
    r_opt: int
    utility: float


def deadline_sensitivity(
    model: StragglerModel,
    strategy: StrategyName,
    deadline_factors: Sequence[float],
    theta: float = 1e-4,
    unit_price: float = 1.0,
) -> List[SweepPoint]:
    """Sweep the deadline as a multiple of the mean task time.

    Longer deadlines should need fewer extra attempts: the optimal ``r``
    is non-increasing in the deadline beyond small-sample noise, and goes
    to zero for sufficiently lax deadlines.
    """
    mean_time = model.mean_task_time
    points = []
    for factor in deadline_factors:
        swept = model.with_deadline(factor * mean_time)
        optimizer = ChronosOptimizer(swept, theta=theta, unit_price=unit_price)
        result = optimizer.optimize(strategy)
        points.append(
            SweepPoint(
                parameter=factor,
                pocd=result.pocd,
                machine_time=result.machine_time,
                r_opt=result.r_opt,
                utility=result.utility,
            )
        )
    return points


def tail_sensitivity(
    model: StragglerModel,
    strategy: StrategyName,
    betas: Sequence[float],
    r: int = 1,
) -> Dict[float, Dict[str, float]]:
    """Sweep the Pareto tail index at a fixed ``r``.

    A heavier tail (smaller beta) raises both the straggler probability
    and the expected machine time.
    """
    results = {}
    for beta in betas:
        swept = model.with_beta(beta)
        results[beta] = {
            "pocd": pocd(swept, strategy, r),
            "machine_time": expected_machine_time(swept, strategy, r),
            "straggler_probability": swept.straggler_probability,
        }
    return results


def optimal_r_sensitivity(
    model: StragglerModel,
    strategy: StrategyName,
    thetas: Sequence[float],
    unit_price: float = 1.0,
) -> Dict[float, int]:
    """Optimal ``r`` as a function of the tradeoff factor ``theta``.

    Larger theta puts more weight on cost, so the optimal ``r`` is
    non-increasing in theta (the mechanism behind Figure 5).
    """
    results = {}
    for theta in thetas:
        optimizer = ChronosOptimizer(model, theta=theta, unit_price=unit_price)
        results[theta] = optimizer.optimize(strategy).r_opt
    return results
