"""Ablation of the completion-time estimator.

Section VI argues that Hadoop's default completion-time estimate is
unreliable because it ignores JVM startup time, and that Chronos'
JVM-aware estimator (eq. 30) reduces false positives in straggler
detection.  This module quantifies that claim in the simulator: it runs
the same speculative strategy with both estimators and reports estimation
error and the resulting PoCD / cost / speculation volume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.api import ScenarioSpec, WorkloadSpec, job_spec_to_dict, run as run_scenario
from repro.core.model import StrategyName
from repro.hadoop.config import HadoopConfig
from repro.simulator.cluster import ClusterConfig
from repro.simulator.engine import SimulationEngine
from repro.simulator.entities import Attempt, JobSpec, Task, Job
from repro.simulator.metrics import SimulationReport
from repro.simulator.progress import CompletionTimeEstimator
from repro.strategies import StrategyParameters


@dataclass(frozen=True)
class EstimatorAblationResult:
    """Outcome of running one strategy with two different estimators."""

    strategy: StrategyName
    chronos_report: SimulationReport
    hadoop_report: SimulationReport

    @property
    def pocd_gain(self) -> float:
        """PoCD improvement of the Chronos estimator over Hadoop's."""
        return self.chronos_report.pocd - self.hadoop_report.pocd

    @property
    def cost_ratio(self) -> float:
        """Cost with Hadoop's estimator relative to Chronos' (>1 means savings)."""
        if self.chronos_report.mean_cost == 0:
            return float("inf")
        return self.hadoop_report.mean_cost / self.chronos_report.mean_cost

    @property
    def speculation_ratio(self) -> float:
        """Speculative-attempt volume with Hadoop's estimator vs Chronos'."""
        chronos = self.chronos_report.speculative_attempt_fraction
        hadoop = self.hadoop_report.speculative_attempt_fraction
        if chronos == 0:
            return float("inf") if hadoop > 0 else 1.0
        return hadoop / chronos


def estimator_ablation(
    jobs: Sequence[JobSpec],
    strategy_name: StrategyName = StrategyName.SPECULATIVE_RESUME,
    params: Optional[StrategyParameters] = None,
    cluster: Optional[ClusterConfig] = None,
    hadoop_config: Optional[HadoopConfig] = None,
    seed: int = 0,
) -> EstimatorAblationResult:
    """Run ``strategy_name`` with the Chronos and the Hadoop estimator."""
    params = params if params is not None else StrategyParameters()
    base = ScenarioSpec(
        workload=WorkloadSpec("explicit", {"jobs": [job_spec_to_dict(job) for job in jobs]}),
        strategy=strategy_name.value,
        strategy_params=params,
        cluster=cluster if cluster is not None else ClusterConfig(),
        hadoop=hadoop_config if hadoop_config is not None else HadoopConfig(),
        estimator="chronos",
        seed=seed,
    )
    chronos_report = run_scenario(base).report
    hadoop_report = run_scenario(base.with_overrides(estimator="hadoop")).report
    return EstimatorAblationResult(
        strategy=strategy_name,
        chronos_report=chronos_report,
        hadoop_report=hadoop_report,
    )


def estimation_errors(
    spec: JobSpec,
    estimator: CompletionTimeEstimator,
    observation_fraction: float = 0.4,
    jvm_delay: float = 3.0,
    samples: int = 500,
    seed: int = 0,
) -> List[float]:
    """Relative estimation errors of an estimator on synthetic attempts.

    Each sample creates one attempt with a known ground-truth duration,
    observes it after ``observation_fraction`` of its processing time has
    elapsed (plus the JVM delay), and records the relative error of the
    estimated completion time.  This isolates estimator quality from the
    rest of the system, mirroring the discussion in Section VI.
    """
    if not 0.0 < observation_fraction < 1.0:
        raise ValueError("observation_fraction must lie in (0, 1)")
    rng = np.random.default_rng(seed)
    engine = SimulationEngine(seed=seed)
    job = Job(spec=spec)
    errors: List[float] = []
    for index in range(samples):
        task = Task(job=job, index=index % spec.num_tasks)
        attempt = Attempt(task=task, created_time=0.0, is_original=True)
        processing = spec.attempt_distribution.sample_one(rng=rng)
        attempt.mark_running(
            launch_time=0.0, jvm_delay=jvm_delay, processing_time=processing, container_id=0
        )
        truth = jvm_delay + processing
        observe_at = jvm_delay + observation_fraction * processing
        estimate = estimator(attempt, observe_at)
        if not np.isfinite(estimate):
            continue
        errors.append((estimate - truth) / truth)
    del engine  # engine only needed to satisfy entity invariants in future extensions
    return errors
