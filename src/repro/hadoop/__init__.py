"""Hadoop YARN control-plane model.

Chronos is prototyped on Hadoop YARN, whose control plane consists of a
central Resource Manager (RM), a per-application Application Master (AM)
and per-node Node Managers (NM).  This subpackage models those components
on top of the discrete-event engine:

* :class:`~repro.hadoop.resource_manager.ResourceManager` — grants
  containers from the cluster, queueing requests when it is full,
* :class:`~repro.hadoop.node_manager.NodeManager` — runs attempts inside
  containers, modelling JVM launch delay and completion/kill events,
* :class:`~repro.hadoop.app_master.ApplicationMaster` — per-job logic:
  creates tasks, requests containers, runs the speculation strategy's
  hooks, monitors progress and records metrics,
* :class:`~repro.hadoop.config.HadoopConfig` — runtime overheads and
  speculation-related knobs.
"""

from repro.hadoop.app_master import ApplicationMaster
from repro.hadoop.config import HadoopConfig
from repro.hadoop.node_manager import NodeManager
from repro.hadoop.resource_manager import ResourceManager

__all__ = [
    "ApplicationMaster",
    "HadoopConfig",
    "NodeManager",
    "ResourceManager",
]
