"""Application Master: per-job task management and speculation hooks.

The AM is the per-job brain: it creates the job's tasks, asks the RM for
containers, launches attempts on NMs, watches progress, runs the plugged
speculation strategy's hooks (planning ``r`` at submission, detecting
stragglers at ``tau_est``, pruning attempts at ``tau_kill``, periodic
checks for the baselines), and records metrics when the job finishes.

Strategies interact with the AM exclusively through the public helper
methods (``launch_attempt``, ``kill_attempt``, ``estimate_completion``,
``keep_best_attempt`` ...), which keeps every strategy implementation
small and free of simulator plumbing.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core.model import StrategyName
from repro.distributions import SampleBuffer, vectorized_batch_size
from repro.hadoop.config import HadoopConfig
from repro.hadoop.node_manager import NodeManager
from repro.hadoop.resource_manager import ContainerRequest, ResourceManager
from repro.simulator.cluster import Container
from repro.simulator.engine import Event, SimulationEngine
from repro.simulator.entities import Attempt, Job, Task
from repro.simulator.metrics import JobRecord, MetricsCollector
from repro.simulator.progress import (
    CompletionTimeEstimator,
    chronos_estimate_completion,
    observed_progress,
)


class ApplicationMaster:
    """Per-job controller executing one speculation strategy."""

    def __init__(
        self,
        engine: SimulationEngine,
        job: Job,
        strategy: "SpeculationStrategyProtocol",
        resource_manager: ResourceManager,
        node_manager: NodeManager,
        config: HadoopConfig,
        metrics: Optional[MetricsCollector] = None,
        estimator: CompletionTimeEstimator = chronos_estimate_completion,
        rng: Optional[np.random.Generator] = None,
        on_job_complete: Optional[Callable[[Job, JobRecord], None]] = None,
    ):
        self._engine = engine
        self._job = job
        self._strategy = strategy
        self._rm = resource_manager
        self._nm = node_manager
        self._config = config
        self._metrics = metrics
        self._estimator = estimator
        self._rng = rng if rng is not None else engine.spawn_rng()
        self._on_job_complete = on_job_complete
        self._pending_requests: Dict[int, ContainerRequest] = {}
        self._scheduled_events: List[Event] = []
        self._finished = False
        # One buffer per AM: the AM's RNG serves exactly one purpose
        # (attempt durations), so block draws see the same stream as the
        # historical one-sample-per-attempt calls.  Sized to roughly one
        # wave of attempts per RNG round-trip.
        distribution = job.spec.attempt_distribution
        self._duration_samples = SampleBuffer(
            lambda n: distribution.sample(n, rng=self._rng),
            vectorized_batch_size(min(512, max(8, job.spec.num_tasks))),
        )

    # ------------------------------------------------------------------
    # Read-only accessors used by strategies
    # ------------------------------------------------------------------
    @property
    def engine(self) -> SimulationEngine:
        """The simulation engine."""
        return self._engine

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._engine.now

    @property
    def job(self) -> Job:
        """The job this AM manages."""
        return self._job

    @property
    def config(self) -> HadoopConfig:
        """Runtime configuration."""
        return self._config

    @property
    def resource_manager(self) -> ResourceManager:
        """The cluster resource manager (for capacity queries)."""
        return self._rm

    @property
    def elapsed(self) -> float:
        """Time since the job started (0 before start)."""
        if self._job.start_time is None:
            return 0.0
        return self._engine.now - self._job.start_time

    @property
    def absolute_deadline(self) -> float:
        """The job's deadline as an absolute simulation time."""
        return self._job.spec.absolute_deadline

    @property
    def finished(self) -> bool:
        """Whether the job has completed and been recorded."""
        return self._finished

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Plan the job and launch the initial attempts of every task."""
        if self._job.start_time is not None:
            raise RuntimeError(f"job {self._job.job_id} was already started")
        self._job.start_time = self._engine.now
        r = int(self._strategy.plan_job(self))
        if r < 0:
            raise ValueError("strategy returned a negative number of extra attempts")
        self._job.extra_attempts = r
        for task in self._job.tasks:
            count = max(1, int(self._strategy.initial_attempt_count(self, task)))
            for index in range(count):
                self.launch_attempt(task, start_offset=0.0, is_original=(index == 0))
        self._strategy.on_job_start(self)

    def schedule(self, delay: float, callback: Callable[..., None], *args) -> Optional[Event]:
        """Schedule a strategy callback; skipped automatically once the job ends."""
        if self._finished:
            return None

        def guarded() -> None:
            if not self._finished:
                callback(*args)

        event = self._engine.schedule_after(delay, guarded)
        self._scheduled_events.append(event)
        return event

    # ------------------------------------------------------------------
    # Attempt management
    # ------------------------------------------------------------------
    def launch_attempt(
        self, task: Task, start_offset: float = 0.0, is_original: bool = False
    ) -> Optional[Attempt]:
        """Create an attempt for ``task`` and request a container for it."""
        if task.is_complete or self._finished:
            return None
        attempt = Attempt(
            task=task,
            created_time=self._engine.now,
            start_offset=start_offset,
            is_original=is_original,
        )
        task.add_attempt(attempt)
        request = self._rm.request_container(
            lambda container, a=attempt: self._on_container_granted(a, container)
        )
        self._pending_requests[attempt.attempt_id] = request
        return attempt

    def kill_attempt(self, attempt: Attempt) -> None:
        """Kill an attempt, cancelling its container request if still queued."""
        request = self._pending_requests.pop(attempt.attempt_id, None)
        if request is not None and attempt.status.value == "waiting":
            request.cancel()
            attempt.mark_killed(self._engine.now)
            return
        if attempt.is_active:
            self._nm.kill(attempt)
        elif not attempt.is_finished:
            attempt.mark_killed(self._engine.now)

    def kill_all_but(self, task: Task, survivor: Attempt) -> int:
        """Kill every live attempt of ``task`` except ``survivor``; return count."""
        killed = 0
        for attempt in list(task.live_attempts):
            if attempt is survivor:
                continue
            self.kill_attempt(attempt)
            killed += 1
        return killed

    def keep_best_attempt(self, task: Task, by: str = "progress") -> Optional[Attempt]:
        """Keep the best live attempt of ``task`` and kill the rest.

        Parameters
        ----------
        by:
            ``"progress"`` keeps the attempt with the highest progress
            score (Clone at ``tau_kill``); ``"estimate"`` keeps the attempt
            with the smallest estimated completion time (the speculative
            strategies at ``tau_kill``).
        """
        live = task.live_attempts
        if not live:
            return None
        if by == "progress":
            best = max(live, key=lambda a: observed_progress(a, self._engine.now))
        elif by == "estimate":
            best = min(live, key=lambda a: self.estimate_completion(a))
        else:
            raise ValueError(f"unknown selection criterion: {by!r}")
        self.kill_all_but(task, best)
        return best

    def speculative_attempt_count(self, task: Task) -> int:
        """Number of non-original attempts ever created for ``task``."""
        return sum(1 for attempt in task.attempts if not attempt.is_original)

    # ------------------------------------------------------------------
    # Progress / estimation helpers
    # ------------------------------------------------------------------
    def progress(self, attempt: Attempt) -> float:
        """Observable progress score of an attempt at the current time."""
        return observed_progress(attempt, self._engine.now)

    def estimate_completion(self, attempt: Attempt) -> float:
        """Estimated absolute completion time of an attempt."""
        return self._estimator(attempt, self._engine.now)

    def estimate_task_completion(self, task: Task) -> float:
        """Most optimistic estimated completion time across live attempts."""
        estimates = [self.estimate_completion(a) for a in task.live_attempts]
        finite = [e for e in estimates if math.isfinite(e)]
        if not finite:
            return math.inf
        return min(finite)

    def completed_task_durations(self) -> List[float]:
        """Execution durations of already-finished tasks (for baselines)."""
        durations = []
        for task in self._job.tasks:
            if task.completion_time is None or self._job.start_time is None:
                continue
            durations.append(task.completion_time - self._job.start_time)
        return durations

    def sample_processing_time(self, work_fraction: float) -> float:
        """Sample the processing time for an attempt covering ``work_fraction``."""
        if not 0.0 < work_fraction <= 1.0:
            raise ValueError("work_fraction must lie in (0, 1]")
        return self._duration_samples.next() * work_fraction

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _on_container_granted(self, attempt: Attempt, container: Container) -> None:
        self._pending_requests.pop(attempt.attempt_id, None)
        if attempt.is_finished or attempt.task.is_complete or self._finished:
            # The attempt became irrelevant while the request was queued.
            self._rm.release_container(container)
            if not attempt.is_finished:
                attempt.mark_killed(self._engine.now)
            return
        processing_time = self.sample_processing_time(attempt.work_fraction)
        self._nm.launch(attempt, container, processing_time, self._on_attempt_complete)

    def _on_attempt_complete(self, attempt: Attempt) -> None:
        task = attempt.task
        if task.is_complete:
            return
        task.mark_complete(self._engine.now)
        # Redundant attempts are killed as soon as one attempt succeeds.
        for other in list(task.live_attempts):
            self.kill_attempt(other)
        self._strategy.on_task_complete(self, task, attempt)
        if self._job.try_finish(self._engine.now):
            self._finalize()

    def _finalize(self) -> None:
        if self._finished:
            return
        self._finished = True
        for event in self._scheduled_events:
            event.cancel()
        self._scheduled_events.clear()
        record = None
        if self._metrics is not None:
            record = self._metrics.record_job(self._job, self._engine.now)
        if self._on_job_complete is not None:
            self._on_job_complete(self._job, record)


class SpeculationStrategyProtocol:
    """Documentation-only protocol describing what the AM expects.

    Concrete strategies live in :mod:`repro.strategies`; this class exists
    so that the AM module documents the contract without importing the
    strategies package (avoiding a circular dependency).
    """

    name: StrategyName

    def plan_job(self, am: ApplicationMaster) -> int:  # pragma: no cover - protocol
        """Return the number of extra attempts ``r`` to use for this job."""
        raise NotImplementedError

    def initial_attempt_count(self, am: ApplicationMaster, task: Task) -> int:  # pragma: no cover
        """How many attempts to launch for ``task`` at job start."""
        raise NotImplementedError

    def on_job_start(self, am: ApplicationMaster) -> None:  # pragma: no cover - protocol
        """Schedule any strategy-specific checks (tau_est, tau_kill, ...)."""
        raise NotImplementedError

    def on_task_complete(
        self, am: ApplicationMaster, task: Task, attempt: Attempt
    ) -> None:  # pragma: no cover - protocol
        """Hook invoked when a task finishes."""
        raise NotImplementedError
