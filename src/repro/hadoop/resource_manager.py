"""Resource Manager: container allocation with a FIFO request queue.

Application Masters ask the RM for containers; when the cluster has free
slots the request is granted after a small heartbeat delay, otherwise the
request joins a FIFO queue and is granted as soon as a container is
released.  Requests can be cancelled (e.g. when the attempt they were for
is killed before a container was ever granted).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque

from repro.hadoop.config import HadoopConfig
from repro.simulator.cluster import Cluster, Container
from repro.simulator.engine import SimulationEngine

# Callback invoked when a container is granted for a request.
GrantCallback = Callable[[Container], None]


@dataclass(slots=True)
class ContainerRequest:
    """A pending request for one container."""

    callback: GrantCallback = field(repr=False)
    cancelled: bool = False

    def cancel(self) -> None:
        """Withdraw the request; a queued request will simply be skipped."""
        self.cancelled = True


class ResourceManager:
    """Grants containers from the cluster, queueing requests when full."""

    def __init__(self, engine: SimulationEngine, cluster: Cluster, config: HadoopConfig):
        self._engine = engine
        self._cluster = cluster
        self._config = config
        self._pending: Deque[ContainerRequest] = deque()
        self._granted = 0

    @property
    def cluster(self) -> Cluster:
        """The underlying cluster."""
        return self._cluster

    @property
    def pending_requests(self) -> int:
        """Number of container requests waiting for capacity."""
        return sum(1 for request in self._pending if not request.cancelled)

    @property
    def granted_containers(self) -> int:
        """Total number of containers granted so far."""
        return self._granted

    def has_idle_capacity(self) -> bool:
        """Free slots exist and nothing is waiting for them.

        Mantri's launch rule ("if there is an available container and no
        task waiting for a container") consults exactly this predicate.
        """
        return self._cluster.has_capacity() and self.pending_requests == 0

    def request_container(self, callback: GrantCallback) -> ContainerRequest:
        """Request one container; ``callback`` runs when it is granted."""
        request = ContainerRequest(callback=callback)
        container = self._cluster.allocate()
        if container is not None:
            self._schedule_grant(request, container)
        else:
            self._pending.append(request)
        return request

    def release_container(self, container: Container) -> None:
        """Release a container and hand the slot to the next queued request."""
        self._cluster.release(container)
        self._drain_queue()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _drain_queue(self) -> None:
        # ``allocate`` already performs the capacity check, so attempting
        # the allocation directly avoids a second scan over the nodes.
        pending = self._pending
        while pending:
            if pending[0].cancelled:
                pending.popleft()
                continue
            container = self._cluster.allocate()
            if container is None:
                return
            self._schedule_grant(pending.popleft(), container)

    def _schedule_grant(self, request: ContainerRequest, container: Container) -> None:
        def deliver() -> None:
            if request.cancelled:
                # The requester no longer needs the container; return it.
                self.release_container(container)
                return
            self._granted += 1
            request.callback(container)

        if self._config.container_grant_delay > 0:
            self._engine.schedule_after(self._config.container_grant_delay, deliver)
        else:
            deliver()
