"""Runtime configuration of the simulated Hadoop cluster."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class HadoopConfig:
    """Knobs of the simulated MapReduce runtime.

    Parameters
    ----------
    jvm_startup_mean:
        Mean JVM launch delay per attempt, seconds.  The paper's estimator
        improvement exists precisely because this is not negligible in
        contended clusters.
    jvm_startup_jitter:
        Half-width of the uniform jitter added to the JVM launch delay.
    container_grant_delay:
        Fixed delay between a container request and its grant when
        capacity is available (AM-RM heartbeat latency).
    speculation_interval:
        Period of the speculation checks run by the baseline strategies
        (Hadoop-S and Mantri).
    mantri_threshold:
        Mantri launches an extra attempt for a task whose estimated
        remaining time exceeds the average task execution time by this
        amount (the paper quotes 30 s).
    mantri_max_extra_attempts:
        Cap on extra attempts per task under Mantri (the paper quotes 3).
    hadoop_s_max_speculative_per_task:
        Default Hadoop launches at most one speculative copy per task.
    """

    jvm_startup_mean: float = 3.0
    jvm_startup_jitter: float = 1.0
    container_grant_delay: float = 0.5
    speculation_interval: float = 5.0
    mantri_threshold: float = 30.0
    mantri_max_extra_attempts: int = 3
    hadoop_s_max_speculative_per_task: int = 1

    def __post_init__(self) -> None:
        if self.jvm_startup_mean < 0:
            raise ValueError("jvm_startup_mean must be non-negative")
        if self.jvm_startup_jitter < 0:
            raise ValueError("jvm_startup_jitter must be non-negative")
        if self.jvm_startup_jitter > self.jvm_startup_mean and self.jvm_startup_mean > 0:
            raise ValueError("jitter must not exceed the mean JVM startup time")
        if self.container_grant_delay < 0:
            raise ValueError("container_grant_delay must be non-negative")
        if self.speculation_interval <= 0:
            raise ValueError("speculation_interval must be positive")
        if self.mantri_threshold < 0:
            raise ValueError("mantri_threshold must be non-negative")
        if self.mantri_max_extra_attempts < 0:
            raise ValueError("mantri_max_extra_attempts must be non-negative")
        if self.hadoop_s_max_speculative_per_task < 0:
            raise ValueError("hadoop_s_max_speculative_per_task must be non-negative")

    @classmethod
    def instantaneous(cls) -> "HadoopConfig":
        """Configuration with zero overheads.

        Useful for validating the simulator against the closed-form
        analysis, which ignores JVM startup and container grant latency.
        """
        return cls(
            jvm_startup_mean=0.0,
            jvm_startup_jitter=0.0,
            container_grant_delay=0.0,
        )
