"""Node Manager: runs attempts inside granted containers.

The NM models what happens on a worker node once a container is granted:
the attempt's JVM is launched (a random startup delay), the attempt
processes its share of the input split (the sampled processing time), and
a completion event fires.  Killing an attempt cancels its completion event
and releases the container immediately.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.distributions import SampleBuffer, vectorized_batch_size
from repro.hadoop.config import HadoopConfig
from repro.hadoop.resource_manager import ResourceManager
from repro.simulator.cluster import Container
from repro.simulator.engine import Event, SimulationEngine
from repro.simulator.entities import Attempt

# Callback invoked when an attempt finishes processing its data.
CompletionCallback = Callable[[Attempt], None]


class NodeManager:
    """Executes attempts in containers and reports their completion."""

    def __init__(
        self,
        engine: SimulationEngine,
        resource_manager: ResourceManager,
        config: HadoopConfig,
        rng: Optional[np.random.Generator] = None,
    ):
        self._engine = engine
        self._rm = resource_manager
        self._config = config
        self._rng = rng if rng is not None else engine.spawn_rng()
        self._completion_events: Dict[int, Event] = {}
        self._containers: Dict[int, Container] = {}
        # The NM's RNG serves exactly one purpose (JVM launch delays), so
        # block draws reproduce the per-launch call stream bit-for-bit.
        # The bounds are read per block from the (immutable) config.
        self._jvm_samples = SampleBuffer(self._draw_jvm_delays, vectorized_batch_size(128))

    @property
    def running_attempts(self) -> int:
        """Number of attempts currently executing on this NM."""
        return len(self._completion_events)

    def sample_jvm_delay(self) -> float:
        """Draw a JVM launch delay from the configured distribution."""
        mean, jitter = self._config.jvm_startup_mean, self._config.jvm_startup_jitter
        if mean <= 0:
            return 0.0
        if jitter <= 0:
            return mean
        return self._jvm_samples.next()

    def _draw_jvm_delays(self, size: int) -> np.ndarray:
        mean, jitter = self._config.jvm_startup_mean, self._config.jvm_startup_jitter
        return self._rng.uniform(mean - jitter, mean + jitter, size=size)

    def launch(
        self,
        attempt: Attempt,
        container: Container,
        processing_time: float,
        on_complete: CompletionCallback,
    ) -> None:
        """Start an attempt in a container and schedule its completion."""
        if processing_time < 0:
            raise ValueError("processing_time must be non-negative")
        jvm_delay = self.sample_jvm_delay()
        attempt.mark_running(
            launch_time=self._engine.now,
            jvm_delay=jvm_delay,
            processing_time=processing_time,
            container_id=container.container_id,
        )
        self._containers[attempt.attempt_id] = container

        def complete() -> None:
            self._completion_events.pop(attempt.attempt_id, None)
            attempt.mark_completed(self._engine.now)
            self._release(attempt)
            on_complete(attempt)

        event = self._engine.schedule_after(jvm_delay + processing_time, complete)
        self._completion_events[attempt.attempt_id] = event

    def kill(self, attempt: Attempt) -> None:
        """Kill a running attempt: cancel completion and free the container."""
        event = self._completion_events.pop(attempt.attempt_id, None)
        if event is not None:
            event.cancel()
        if not attempt.is_finished:
            attempt.mark_killed(self._engine.now)
        self._release(attempt)

    def _release(self, attempt: Attempt) -> None:
        container = self._containers.pop(attempt.attempt_id, None)
        if container is not None:
            self._rm.release_container(container)
